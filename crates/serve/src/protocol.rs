//! The serving wire protocol: newline-delimited JSON.
//!
//! One request per line, one response line per request, in request
//! order. Requests carry the program text plus the same options the
//! batch CLI exposes; responses reuse the CLI exit-code taxonomy as a
//! per-request `status` (0 = success, 1 = bad input — malformed
//! request, oversized line, parse error —, 2 = internal failure). The
//! response bytes are a pure function of the request bytes and the
//! server's configuration: a warm-cache answer is byte-identical to the
//! cold computation it replays, which is what the concurrency and cache
//! oracles in `tests/serve.rs` check.
//!
//! ```text
//! → {"id":"r1","program":"prog { ... }","mode":"pde","wall_ms":200}
//! ← {"id":"r1","status":0,"program":"prog { ... }","rounds":2,
//!    "eliminated":1,"sunk":1,"inserted":1,"rung":"none"}
//! → {"op":"ping"}
//! ← {"status":0,"pong":true}
//! → {"op":"health"}
//! ← {"status":0,"health":true,"requests":12,"wal_appends":9,...}
//! → {"op":"shutdown"}
//! ← {"status":0,"shutdown":true}
//! ```
//!
//! Unknown request keys are ignored (forward compatibility); known keys
//! with the wrong type are a protocol error (`status` 1). Empty lines
//! produce no response.

use std::fmt::Write as _;

use pdce_dfa::SolverStrategy;
use pdce_trace::json::{self, Value};

/// Per-request status, mirroring the CLI exit-code contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was served.
    Ok,
    /// The request itself was at fault: malformed JSON, a bad field
    /// type, an oversized line, or an unparseable program.
    BadInput,
    /// Our fault: a worker panic or any other internal failure.
    Internal,
}

impl Status {
    /// The numeric wire code (equals the CLI exit code).
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::BadInput => 1,
            Status::Internal => 2,
        }
    }
}

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Optimize the carried program (the default when `op` is absent).
    Optimize,
    /// Liveness probe: answered with `"pong":true`, no program needed.
    Ping,
    /// Self-healing introspection: request/cache/WAL/quarantine/breaker
    /// counters as one flat JSON object, no program needed.
    Health,
    /// Drain everything already read, answer, and stop this connection
    /// (and, for the daemon, the process).
    Shutdown,
}

/// A decoded request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Optional client-chosen id, echoed verbatim in the response.
    pub id: Option<String>,
    pub op: Op,
    /// The program text (required for [`Op::Optimize`]).
    pub program: String,
    /// Optimization mode: `pde` (default), `pfe`, `dce`, or `fce`.
    pub mode: Mode,
    /// Requested round cap; clamped to the server's cap at admission.
    pub max_rounds: Option<u64>,
    /// Requested solver-pop budget; clamped to the server's cap.
    pub max_pops: Option<u64>,
    /// Requested wall-clock budget in ms; clamped to the server's cap.
    pub wall_ms: Option<u64>,
    /// Translation-validation vectors per round (0 = off).
    pub validate: Option<u32>,
    /// Explicit solver strategy for this request; `None` defers to the
    /// server's `--solver` (and, failing that, the ambient selection).
    pub solver: Option<SolverStrategy>,
    /// Bypass the result cache for this request (both lookup and fill).
    pub no_cache: bool,
}

/// The four optimization modes the daemon serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Pde,
    Pfe,
    Dce,
    Fce,
}

impl Mode {
    /// Stable label, used in cache keys and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Pde => "pde",
            Mode::Pfe => "pfe",
            Mode::Dce => "dce",
            Mode::Fce => "fce",
        }
    }

    fn parse(s: &str) -> Option<Mode> {
        match s {
            "pde" => Some(Mode::Pde),
            "pfe" => Some(Mode::Pfe),
            "dce" => Some(Mode::Dce),
            "fce" => Some(Mode::Fce),
            _ => None,
        }
    }
}

fn str_field(doc: &Value, key: &str) -> Result<Option<String>, String> {
    match doc.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

fn u64_field(doc: &Value, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
            Ok(Some(*n as u64))
        }
        Some(_) => Err(format!("`{key}` must be a non-negative integer")),
    }
}

fn bool_field(doc: &Value, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

impl Request {
    /// Decodes one request line. The error string is ready to be wrapped
    /// in a `status` 1 response.
    pub fn decode(line: &str) -> Result<Request, String> {
        let doc = json::parse(line).map_err(|e| format!("malformed request JSON: {e}"))?;
        if !matches!(doc, Value::Obj(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let id = str_field(&doc, "id")?;
        let op = match str_field(&doc, "op")?.as_deref() {
            None | Some("optimize") => Op::Optimize,
            Some("ping") => Op::Ping,
            Some("health") => Op::Health,
            Some("shutdown") => Op::Shutdown,
            Some(other) => return Err(format!("unknown op `{other}`")),
        };
        let mode = match str_field(&doc, "mode")?.as_deref() {
            None => Mode::Pde,
            Some(m) => {
                Mode::parse(m).ok_or_else(|| format!("unknown mode `{m}` (pde|pfe|dce|fce)"))?
            }
        };
        let program = match op {
            Op::Optimize => match str_field(&doc, "program")? {
                Some(p) if !p.trim().is_empty() => p,
                _ => return Err("missing `program`".to_string()),
            },
            Op::Ping | Op::Health | Op::Shutdown => String::new(),
        };
        let validate = match u64_field(&doc, "validate")? {
            Some(v) if v > u32::MAX as u64 => return Err("`validate` is out of range".to_string()),
            v => v.map(|v| v as u32),
        };
        let solver = match str_field(&doc, "solver")? {
            None => None,
            Some(s) => Some(
                SolverStrategy::parse(&s)
                    .ok_or_else(|| format!("unknown solver `{s}` (fifo|priority|sparse)"))?,
            ),
        };
        Ok(Request {
            id,
            op,
            program,
            mode,
            max_rounds: u64_field(&doc, "max_rounds")?,
            max_pops: u64_field(&doc, "max_pops")?,
            wall_ms: u64_field(&doc, "wall_ms")?,
            validate,
            solver,
            no_cache: bool_field(&doc, "no_cache")?,
        })
    }
}

/// The deterministic, cacheable part of a successful response: the
/// optimized program plus the logical (wall-clock-free) stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultPayload {
    /// Canonically printed optimized program.
    pub program: String,
    pub rounds: u64,
    pub eliminated: u64,
    pub sunk: u64,
    pub inserted: u64,
    /// Resilience-ladder rung the answer came from (`"none"` for an
    /// undegraded run).
    pub rung: String,
}

impl ResultPayload {
    /// Approximate in-memory footprint, used for cache-size accounting.
    pub fn cost_bytes(&self) -> u64 {
        (self.program.len() + self.rung.len() + 96) as u64
    }
}

fn push_id(out: &mut String, id: &Option<String>) {
    if let Some(id) = id {
        out.push_str("{\"id\":");
        json::write_escaped(out, id);
        out.push(',');
    } else {
        out.push('{');
    }
}

/// Renders a success response for `payload`, echoing `id`.
pub fn render_result(id: &Option<String>, payload: &ResultPayload) -> String {
    let mut out = String::with_capacity(payload.program.len() + 128);
    push_id(&mut out, id);
    let _ = write!(out, "\"status\":{},\"program\":", Status::Ok.code());
    json::write_escaped(&mut out, &payload.program);
    let _ = write!(
        out,
        ",\"rounds\":{},\"eliminated\":{},\"sunk\":{},\"inserted\":{},\"rung\":",
        payload.rounds, payload.eliminated, payload.sunk, payload.inserted
    );
    json::write_escaped(&mut out, &payload.rung);
    out.push('}');
    out
}

/// Renders an error response (`status` 1 or 2) with a human-readable
/// message.
pub fn render_error(id: &Option<String>, status: Status, message: &str) -> String {
    debug_assert_ne!(status, Status::Ok);
    let mut out = String::with_capacity(message.len() + 48);
    push_id(&mut out, id);
    let _ = write!(out, "\"status\":{},\"error\":", status.code());
    json::write_escaped(&mut out, message);
    out.push('}');
    out
}

/// Renders the `ping` response.
pub fn render_pong(id: &Option<String>) -> String {
    let mut out = String::new();
    push_id(&mut out, id);
    let _ = write!(out, "\"status\":{},\"pong\":true}}", Status::Ok.code());
    out
}

/// Renders the `health` introspection response. Each field value must
/// already be a valid JSON token (a number, `true`, or a quoted
/// string); the server composes them from its counters.
pub fn render_health(id: &Option<String>, fields: &[(&'static str, String)]) -> String {
    let mut out = String::with_capacity(fields.len() * 24 + 32);
    push_id(&mut out, id);
    let _ = write!(out, "\"status\":{},\"health\":true", Status::Ok.code());
    for (key, value) in fields {
        let _ = write!(out, ",\"{key}\":{value}");
    }
    out.push('}');
    out
}

/// Renders the `shutdown` acknowledgement.
pub fn render_shutdown(id: &Option<String>) -> String {
    let mut out = String::new();
    push_id(&mut out, id);
    let _ = write!(out, "\"status\":{},\"shutdown\":true}}", Status::Ok.code());
    out
}

/// Builds an optimize-request line — the copy-pasteable client side of
/// the protocol, also used by the bench harness and tests.
pub fn encode_request(id: Option<&str>, program: &str, mode: Mode) -> String {
    let mut out = String::with_capacity(program.len() + 64);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        json::write_escaped(&mut out, id);
        out.push(',');
    }
    out.push_str("\"program\":");
    json::write_escaped(&mut out, program);
    let _ = write!(out, ",\"mode\":\"{}\"}}", mode.label());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_minimal_request() {
        let r = Request::decode(r#"{"program":"prog { block e { halt } }"}"#).unwrap();
        assert_eq!(r.op, Op::Optimize);
        assert_eq!(r.mode, Mode::Pde);
        assert!(r.id.is_none());
        assert!(!r.no_cache);
    }

    #[test]
    fn decodes_all_options() {
        let r = Request::decode(
            r#"{"id":"a","program":"p","mode":"pfe","max_rounds":3,"max_pops":10,
                "wall_ms":250,"validate":4,"no_cache":true,"future_key":1}"#,
        )
        .unwrap();
        assert_eq!(r.id.as_deref(), Some("a"));
        assert_eq!(r.mode, Mode::Pfe);
        assert_eq!(r.max_rounds, Some(3));
        assert_eq!(r.max_pops, Some(10));
        assert_eq!(r.wall_ms, Some(250));
        assert_eq!(r.validate, Some(4));
        assert!(r.no_cache);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode("[1,2]").is_err());
        assert!(Request::decode(r#"{"program":7}"#).is_err());
        assert!(Request::decode(r#"{"program":"p","mode":"xxx"}"#).is_err());
        assert!(Request::decode(r#"{"program":"p","max_rounds":-1}"#).is_err());
        assert!(Request::decode(r#"{"program":"p","max_rounds":1.5}"#).is_err());
        assert!(Request::decode(r#"{"program":"p","no_cache":"yes"}"#).is_err());
        assert!(
            Request::decode(r#"{"op":"optimize"}"#).is_err(),
            "no program"
        );
        assert!(Request::decode(r#"{"id":3,"program":"p"}"#).is_err());
    }

    #[test]
    fn ops_need_no_program() {
        assert_eq!(Request::decode(r#"{"op":"ping"}"#).unwrap().op, Op::Ping);
        assert_eq!(
            Request::decode(r#"{"op":"health"}"#).unwrap().op,
            Op::Health
        );
        assert_eq!(
            Request::decode(r#"{"op":"shutdown","id":"x"}"#).unwrap().op,
            Op::Shutdown
        );
    }

    #[test]
    fn health_responses_are_valid_json() {
        let line = render_health(
            &Some("h".into()),
            &[
                ("requests", "7".to_string()),
                ("breaker_state", "\"closed\"".to_string()),
            ],
        );
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("h"));
        assert_eq!(doc.get("status").unwrap().as_num(), Some(0.0));
        assert_eq!(doc.get("health").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("requests").unwrap().as_num(), Some(7.0));
        assert_eq!(doc.get("breaker_state").unwrap().as_str(), Some("closed"));
    }

    #[test]
    fn responses_are_valid_json_and_echo_the_id() {
        let payload = ResultPayload {
            program: "prog {\n}\n".into(),
            rounds: 2,
            eliminated: 1,
            sunk: 1,
            inserted: 0,
            rung: "none".into(),
        };
        let line = render_result(&Some("r\"1".into()), &payload);
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("r\"1"));
        assert_eq!(doc.get("status").unwrap().as_num(), Some(0.0));
        assert_eq!(doc.get("program").unwrap().as_str(), Some("prog {\n}\n"));
        let err = render_error(&None, Status::BadInput, "nope\n");
        let doc = json::parse(&err).unwrap();
        assert_eq!(doc.get("status").unwrap().as_num(), Some(1.0));
        assert!(doc.get("id").is_none());
    }

    #[test]
    fn encode_request_round_trips() {
        let line = encode_request(Some("q"), "prog { block e { halt } }", Mode::Pfe);
        let r = Request::decode(&line).unwrap();
        assert_eq!(r.id.as_deref(), Some("q"));
        assert_eq!(r.mode, Mode::Pfe);
        assert_eq!(r.program, "prog { block e { halt } }");
    }
}
