//! Poison-request quarantine and the sandbox-failure circuit breaker.
//!
//! The resilience ladder makes any *single* optimization attempt total,
//! but a poison request — one whose optimization panics, blows its
//! budget, or wedges a worker every time it is seen — would otherwise
//! burn a full ladder descent (and a watchdog deadline) on every
//! repeat. Two mechanisms stop that:
//!
//! - **Quarantine** counts *strikes* per canonical content hash. Every
//!   request whose attempt degraded (any ladder rung engaged, a
//!   watchdog deadline fired, or an internal error escaped) takes a
//!   strike; at `max_strikes` the hash enters the quarantine set and
//!   later repeats short-circuit to a structured identity answer
//!   (rung `"quarantined"`) before any optimization work. The set is
//!   persisted next to the cache with the same checksummed line
//!   framing, so a poison request stays quarantined across restarts.
//! - **The breaker** watches the *rolling* sandbox-failure rate across
//!   requests. When more than half of a full recent window failed, it
//!   trips `Open`: admission degrades batch-wide to the identity rung
//!   (rung `"breaker-open"`) for a cooldown, protecting the fleet from
//!   a systemic fault (a bad deploy, a poisoned corpus) instead of
//!   grinding every request through a doomed ladder. After the
//!   cooldown it goes `HalfOpen` and admits probes; enough consecutive
//!   probe successes close it again, one failure re-opens it.
//!
//! Both structures are deterministic for a fixed request sequence, so
//! the soak tests can assert exact state transitions.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};

use crate::cache::CacheKey;
use crate::wal::{frame, unframe};

/// On-disk header of the persisted quarantine set.
const HEADER: &str = "pdce-serve-quarantine v1";

/// The strike ledger and the persisted quarantine set.
#[derive(Debug)]
pub struct Quarantine {
    path: Option<PathBuf>,
    /// Degradation strikes per canonical content hash (only hashes
    /// below the quarantine threshold).
    strikes: HashMap<u128, u32>,
    quarantined: HashSet<u128>,
    max_strikes: u32,
    /// Requests short-circuited by the quarantine set.
    pub hits: u64,
}

impl Quarantine {
    /// An empty, unpersisted quarantine (testing and `--no-cache`
    /// servers). `max_strikes` of 0 disables quarantining entirely.
    pub fn in_memory(max_strikes: u32) -> Quarantine {
        Quarantine {
            path: None,
            strikes: HashMap::new(),
            quarantined: HashSet::new(),
            max_strikes,
            hits: 0,
        }
    }

    /// Opens (or creates) the persisted set at `path`. Damaged lines
    /// are skipped — losing a quarantine entry only means the poison
    /// hash must strike out again.
    pub fn load(path: &Path, max_strikes: u32) -> Quarantine {
        let mut q = Quarantine::in_memory(max_strikes);
        q.path = Some(path.to_path_buf());
        let Ok(text) = std::fs::read_to_string(path) else {
            return q;
        };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return q;
        }
        for line in lines {
            let Some(body) = unframe(line) else { continue };
            if let Some(hex) = body
                .strip_prefix("{\"key\":\"")
                .and_then(|r| r.strip_suffix("\"}"))
            {
                if let Ok(key) = u128::from_str_radix(hex, 16) {
                    q.quarantined.insert(key);
                }
            }
        }
        q
    }

    pub fn len(&self) -> usize {
        self.quarantined.len()
    }

    pub fn is_empty(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Whether `key` is quarantined, counting a hit if so.
    pub fn check(&mut self, key: CacheKey) -> bool {
        if self.quarantined.contains(&key.0) {
            self.hits += 1;
            return true;
        }
        false
    }

    /// Records one degradation strike against `key`. Returns `true`
    /// when this strike quarantines the hash (the set is persisted
    /// before returning).
    pub fn strike(&mut self, key: CacheKey) -> bool {
        if self.max_strikes == 0 || self.quarantined.contains(&key.0) {
            return false;
        }
        let strikes = self.strikes.entry(key.0).or_insert(0);
        *strikes += 1;
        if *strikes < self.max_strikes {
            return false;
        }
        self.strikes.remove(&key.0);
        self.quarantined.insert(key.0);
        self.persist();
        true
    }

    /// Clears the strike count for `key` (a clean, undegraded answer
    /// proves the request is not poison).
    pub fn absolve(&mut self, key: CacheKey) {
        self.strikes.remove(&key.0);
    }

    /// Atomically rewrites the persisted set (it is small — one line
    /// per poison hash — so a full rewrite per change is fine).
    fn persist(&self) {
        let Some(path) = &self.path else { return };
        let mut out = String::with_capacity(64 * (self.quarantined.len() + 1));
        out.push_str(HEADER);
        out.push('\n');
        let mut keys: Vec<u128> = self.quarantined.iter().copied().collect();
        keys.sort_unstable();
        for key in keys {
            out.push_str(&frame(&format!("{{\"key\":\"{key:032x}\"}}")));
        }
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, &out).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }
}

/// Breaker position (exposed as the `pdce_serve_breaker_state` gauge:
/// 0 = closed, 1 = half-open, 2 = open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal admission.
    Closed,
    /// Tripped: every request is served at the identity rung for the
    /// remaining cooldown (counted in requests).
    Open { cooldown: u32 },
    /// Probing: requests run the full ladder again; `successes`
    /// consecutive clean answers close the breaker, one failure
    /// re-opens it.
    HalfOpen { successes: u32 },
}

impl BreakerState {
    /// The gauge encoding.
    pub fn gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen { .. } => 1,
            BreakerState::Open { .. } => 2,
        }
    }

    /// Stable label for the `health` introspection response.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen { .. } => "half-open",
            BreakerState::Open { .. } => "open",
        }
    }
}

/// Tuning knobs for [`Breaker`]; the defaults suit both production and
/// the deterministic soak tests.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Rolling-window size; the failure rate is only consulted once
    /// the window is full.
    pub window: usize,
    /// Trip when `failures * 2 >= window` (≥50% of a full window).
    /// Kept implicit; see [`Breaker::record`].
    pub cooldown: u32,
    /// Consecutive half-open successes required to close.
    pub probes_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 16,
            cooldown: 16,
            probes_to_close: 3,
        }
    }
}

/// The rolling sandbox-failure circuit breaker.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Recent request outcomes, `true` = degraded/failed.
    window: VecDeque<bool>,
    /// Lifetime trips (for the health report).
    pub trips: u64,
}

impl Breaker {
    pub fn new(config: BreakerConfig) -> Breaker {
        Breaker {
            config,
            state: BreakerState::Closed,
            window: VecDeque::with_capacity(config.window.max(1)),
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consulted at admission: `true` when the request may run the
    /// full ladder, `false` when it must be served at the identity
    /// rung. `Open` counts the request against the cooldown and moves
    /// to `HalfOpen` when it expires; `HalfOpen` admits every request
    /// as a probe.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen { .. } => true,
            BreakerState::Open { cooldown } => {
                if cooldown > 1 {
                    self.state = BreakerState::Open {
                        cooldown: cooldown - 1,
                    };
                } else {
                    self.state = BreakerState::HalfOpen { successes: 0 };
                }
                false
            }
        }
    }

    /// Records one admitted request's outcome (`failed` = any ladder
    /// degradation, watchdog deadline, or escaped error).
    pub fn record(&mut self, failed: bool) {
        match self.state {
            BreakerState::Closed => {
                if self.window.len() == self.config.window {
                    self.window.pop_front();
                }
                self.window.push_back(failed);
                let failures = self.window.iter().filter(|&&f| f).count();
                if self.window.len() == self.config.window && failures * 2 >= self.config.window {
                    self.trip();
                }
            }
            BreakerState::HalfOpen { successes } => {
                if failed {
                    self.trip();
                } else if successes + 1 >= self.config.probes_to_close {
                    self.state = BreakerState::Closed;
                    self.window.clear();
                } else {
                    self.state = BreakerState::HalfOpen {
                        successes: successes + 1,
                    };
                }
            }
            // Identity-rung answers while open are not samples.
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open {
            cooldown: self.config.cooldown.max(1),
        };
        self.trips += 1;
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pdce-serve-quar-{}-{name}", std::process::id()))
    }

    #[test]
    fn three_strikes_quarantine_and_persist() {
        let path = tmp("strikes");
        std::fs::remove_file(&path).ok();
        let key = CacheKey(42);
        let mut q = Quarantine::load(&path, 3);
        assert!(!q.check(key));
        assert!(!q.strike(key));
        assert!(!q.strike(key));
        assert!(q.strike(key), "third strike quarantines");
        assert!(q.check(key));
        assert_eq!(q.hits, 1);
        // Persisted: a restart still short-circuits the poison hash.
        let mut back = Quarantine::load(&path, 3);
        assert_eq!(back.len(), 1);
        assert!(back.check(key));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_answers_reset_the_strike_count() {
        let mut q = Quarantine::in_memory(3);
        let key = CacheKey(7);
        q.strike(key);
        q.strike(key);
        q.absolve(key);
        assert!(!q.strike(key));
        assert!(!q.strike(key));
        assert!(q.strike(key));
    }

    #[test]
    fn zero_max_strikes_disables_quarantine() {
        let mut q = Quarantine::in_memory(0);
        for _ in 0..10 {
            assert!(!q.strike(CacheKey(1)));
        }
        assert!(!q.check(CacheKey(1)));
    }

    #[test]
    fn damaged_quarantine_files_load_what_survives() {
        let path = tmp("damaged");
        std::fs::remove_file(&path).ok();
        let mut q = Quarantine::load(&path, 1);
        q.strike(CacheKey(1));
        q.strike(CacheKey(2));
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replacen("key", "kex", 1); // break one line's checksum body
        std::fs::write(&path, &text).unwrap();
        let back = Quarantine::load(&path, 1);
        assert_eq!(back.len(), 1, "damaged line skipped, survivor kept");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn breaker_trips_on_a_failing_window_and_recovers_via_probes() {
        let mut b = Breaker::new(BreakerConfig {
            window: 4,
            cooldown: 2,
            probes_to_close: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        // Below the window size: never trips, whatever the rate.
        for _ in 0..3 {
            assert!(b.admit());
            b.record(true);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
        b.record(true); // 4/4 failed: trip
        assert_eq!(b.state(), BreakerState::Open { cooldown: 2 });
        assert_eq!(b.trips, 1);
        // Cooldown counts denied admissions, then half-opens.
        assert!(!b.admit());
        assert!(!b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen { successes: 0 });
        // Probe success × 2 closes; the window starts fresh.
        assert!(b.admit());
        b.record(false);
        assert!(b.admit());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
        // A half-open failure re-opens immediately.
        for _ in 0..4 {
            b.admit();
            b.record(true);
        }
        b.admit();
        b.admit();
        assert!(matches!(b.state(), BreakerState::HalfOpen { .. }));
        b.admit();
        b.record(true);
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        assert_eq!(b.trips, 3);
    }

    #[test]
    fn mostly_clean_traffic_never_trips() {
        let mut b = Breaker::new(BreakerConfig::default());
        for i in 0..200 {
            assert!(b.admit());
            b.record(i % 4 == 0); // 25% failure rate: under the bar
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips, 0);
    }
}
