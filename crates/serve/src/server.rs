//! The serving loop: admission control, cache, pool sharding, transport.
//!
//! A [`Server`] is a stateless-per-request engine plus two shared
//! resources: the persistent result cache and the configured budget
//! caps. Connections feed it newline-delimited requests; each
//! connection runs an *adaptive batching* dispatcher — block for the
//! first pending line, then greedily drain whatever else has already
//! arrived (up to `jobs * 8`) and shard the batch across the
//! `pdce-par` pool. An idle client gets single-request latency; a
//! flooding client gets full-pool throughput; and because the pool
//! reassembles results in item order, responses always come back in
//! request order regardless of worker count.
//!
//! Admission control is the PR 5 budget machinery turned per-request: a
//! request may lower but never raise the server's round/pop/wall caps,
//! and an exhausted budget degrades that one request down the
//! resilience ladder (the answer is still served, labelled with its
//! rung) instead of stalling the fleet. A worker panic is sandboxed by
//! the pool and answered as a structured `status` 2 error.
//!
//! The self-healing layer sits on top of admission: an optimization
//! attempt that escapes the resilience ladder is retried on
//! progressively lower rungs with capped exponential backoff; a
//! program hash that keeps failing is quarantined (persisted next to
//! the cache) and short-circuited to an identity answer; a rolling
//! window of failures trips a circuit breaker that degrades *all*
//! admission to the identity rung until half-open probes succeed; and
//! batches are dispatched under a watchdog (`pdce_par::supervised_map`)
//! whose soft deadline raises the cooperative cancellation flag and
//! whose hard deadline abandons a wedged worker, so one hostage request
//! never stalls its batch.

use std::io::{BufRead, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pdce_core::driver::{optimize_resilient, PdceConfig};
use pdce_dfa::SolverStrategy;
use pdce_ir::parser::parse;
use pdce_ir::printer::print_program;
use pdce_trace::budget::Budget;

use pdce_par::{supervised_map, ItemOutcome, SupervisorOptions};

use crate::cache::{CacheKey, PersistentCache};
use crate::protocol::{
    render_error, render_health, render_pong, render_result, render_shutdown, Mode, Op, Request,
    ResultPayload, Status,
};
use crate::quarantine::{Breaker, BreakerConfig, Quarantine};

/// Registry handles for the serving plane. Request/cache counters are
/// deterministic for a fixed request sequence; latency and batch-size
/// families are timing-dependent and registered as such.
mod serve_metrics {
    use pdce_metrics::{global, Counter, Gauge, Histogram, Stability};
    use std::sync::{Arc, LazyLock};

    pub fn requests(status: &'static str) -> Arc<Counter> {
        global().counter(
            "pdce_serve_requests_total",
            "Requests answered by the serve loop, by response status",
            Stability::Deterministic,
            &[("status", status)],
        )
    }

    fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
        global().counter(name, help, Stability::Deterministic, &[])
    }

    /// Failure-path counters are timing-tainted: wall-budget trips (and
    /// therefore strikes, breaker samples, and retries) depend on the
    /// clock, so they are excluded from byte-stability checks.
    fn timing_counter(name: &'static str, help: &'static str) -> Arc<Counter> {
        global().counter(name, help, Stability::Timing, &[])
    }

    pub static CACHE_HITS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_cache_hits_total",
            "Requests answered from the persistent result cache",
        )
    });
    pub static CACHE_MISSES: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_cache_misses_total",
            "Cacheable requests that had to be computed",
        )
    });
    pub static REQUEST_WALL: LazyLock<Arc<Histogram>> = LazyLock::new(|| {
        global().histogram(
            "pdce_serve_request_wall_ns",
            "Per-request end-to-end serve latency in nanoseconds",
            Stability::Timing,
            &[],
        )
    });
    pub static BATCH_ITEMS: LazyLock<Arc<Histogram>> = LazyLock::new(|| {
        global().histogram(
            "pdce_serve_batch_items",
            "Requests per adaptive dispatcher batch",
            Stability::Timing,
            &[],
        )
    });
    pub static QUARANTINE_HITS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        timing_counter(
            "pdce_serve_quarantine_hits_total",
            "Requests short-circuited by the poison-request quarantine",
        )
    });
    pub static RETRIES: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        timing_counter(
            "pdce_serve_retries_total",
            "Optimization attempts re-run on a lower rung after an escaped failure",
        )
    });
    pub static WATCHDOG_TIMEOUTS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        timing_counter(
            "pdce_serve_watchdog_timeouts_total",
            "Requests abandoned past the hard watchdog deadline and answered as identity",
        )
    });
    pub static IDLE_WAKEUPS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        timing_counter(
            "pdce_serve_idle_wakeups_total",
            "Poll-loop wakeups that found no pending input (bounded by idle backoff)",
        )
    });
    pub static BREAKER_STATE: LazyLock<Arc<Gauge>> = LazyLock::new(|| {
        global().gauge(
            "pdce_serve_breaker_state",
            "Circuit-breaker position: 0 closed, 1 half-open, 2 open",
            Stability::Timing,
            &[],
        )
    });
}

/// Server configuration: transport-independent knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads per connection batch (1 = inline).
    pub jobs: usize,
    /// Explicit solver strategy; `None` uses the ambient selection.
    pub strategy: Option<SolverStrategy>,
    /// Warm-start seeded re-solving between rounds.
    pub incremental: bool,
    /// Server-wide cap on per-request rounds (requests may go lower).
    pub max_rounds: Option<u64>,
    /// Server-wide cap on per-request solver pops.
    pub max_pops: Option<u64>,
    /// Server-wide cap on per-request wall time, milliseconds. The
    /// default admission-control backstop: one hostile request degrades
    /// down the resilience ladder when it trips instead of stalling the
    /// fleet.
    pub wall_ms: Option<u64>,
    /// Translation-validation vectors per round applied to every
    /// request that does not ask for its own count.
    pub validate: Option<u32>,
    /// Requests longer than this many bytes are rejected with a
    /// `status` 1 error before any parsing happens.
    pub max_request_bytes: usize,
    /// Result-cache byte bound (LRU eviction past it).
    pub cache_bytes: u64,
    /// On-disk home of the result cache; `None` keeps it in memory.
    pub cache_path: Option<PathBuf>,
    /// Master switch for the result cache.
    pub cache: bool,
    /// WAL appends between fsyncs (1 = every append; a crash loses at
    /// most the unfsynced tail, never a synced record).
    pub wal_fsync_every: u64,
    /// Failed attempts before a program hash is quarantined (0
    /// disables the quarantine entirely).
    pub max_strikes: u32,
    /// Base of the capped exponential backoff between retry attempts,
    /// in milliseconds.
    pub retry_backoff_ms: u64,
    /// Soft watchdog deadline per batched request: past it, the
    /// worker's cancellation flag is raised so a cooperative staller
    /// degrades to an in-band answer. `None` derives `2 * wall_ms`.
    pub watchdog_soft_ms: Option<u64>,
    /// Hard watchdog deadline: past it, the wedged worker is abandoned
    /// and the request answered as identity (`"watchdog-timeout"`
    /// rung). `None` derives soft + 1000 ms.
    pub watchdog_hard_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            jobs: 1,
            strategy: None,
            incremental: true,
            max_rounds: None,
            max_pops: None,
            wall_ms: Some(2_000),
            validate: None,
            max_request_bytes: 1 << 20,
            cache_bytes: 64 << 20,
            cache_path: None,
            cache: true,
            wal_fsync_every: crate::cache::DEFAULT_FSYNC_EVERY,
            max_strikes: 3,
            retry_backoff_ms: 2,
            watchdog_soft_ms: None,
            watchdog_hard_ms: None,
        }
    }
}

/// Totals of one server's lifetime, rendered by the CLI at exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    pub requests: u64,
    pub ok: u64,
    pub bad_input: u64,
    pub internal: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Whether a `shutdown` request ended the loop (vs EOF).
    pub shutdown: bool,
}

/// One line's fate after the bounded reader.
enum Incoming {
    Line(String),
    Oversized(usize),
    BadUtf8,
}

/// A rendered response plus the shutdown signal it may carry and the
/// quarantine/breaker verdict of a *computed* answer (cache hits and
/// short-circuits carry none). Verdicts are settled by the dispatcher
/// (or `respond_line`), never by the worker itself, so an abandoned
/// zombie worker can never double-count its item.
struct Reply {
    line: String,
    shutdown: bool,
    verdict: Option<Verdict>,
}

/// What a computed answer means for the self-healing state machines.
#[derive(Clone, Copy)]
struct Verdict {
    key: CacheKey,
    /// Degraded (any non-`none` rung) or retried: a strike and a
    /// breaker failure sample. Clean answers absolve the hash.
    failed: bool,
}

/// The quarantine file lives next to the cache file.
fn quarantine_path(cache_path: &std::path::Path) -> PathBuf {
    let mut os = cache_path.as_os_str().to_owned();
    os.push(".quarantine");
    PathBuf::from(os)
}

/// The optimization-as-a-service engine.
pub struct Server {
    opts: ServeOptions,
    cache: Mutex<PersistentCache>,
    quarantine: Mutex<Quarantine>,
    breaker: Mutex<Breaker>,
    requests: AtomicU64,
    ok: AtomicU64,
    bad_input: AtomicU64,
    internal: AtomicU64,
    retries: AtomicU64,
    wedged: AtomicU64,
    stop: AtomicBool,
}

impl Server {
    /// Builds a server, loading the persistent cache and quarantine
    /// set when configured.
    pub fn new(opts: ServeOptions) -> Server {
        let cache = match (&opts.cache_path, opts.cache) {
            (Some(path), true) => {
                PersistentCache::load_with_fsync(path, opts.cache_bytes, opts.wal_fsync_every)
            }
            _ => PersistentCache::in_memory(opts.cache_bytes),
        };
        let quarantine = match &opts.cache_path {
            Some(path) => Quarantine::load(&quarantine_path(path), opts.max_strikes),
            None => Quarantine::in_memory(opts.max_strikes),
        };
        Server {
            opts,
            cache: Mutex::new(cache),
            quarantine: Mutex::new(quarantine),
            breaker: Mutex::new(Breaker::new(BreakerConfig::default())),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            bad_input: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            wedged: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The configured options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// What the cache's initial load found (for the CLI banner).
    pub fn cache_load_report(&self) -> crate::cache::LoadReport {
        self.cache.lock().expect("cache lock").load_report
    }

    /// Lifetime totals so far.
    pub fn summary(&self) -> ServeSummary {
        let cache = self.cache.lock().expect("cache lock");
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            bad_input: self.bad_input.load(Ordering::Relaxed),
            internal: self.internal.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            shutdown: self.stop.load(Ordering::Relaxed),
        }
    }

    /// Persists the result cache (a no-op for in-memory caches).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the atomic rewrite.
    pub fn save_cache(&self) -> std::io::Result<()> {
        self.cache.lock().expect("cache lock").save()
    }

    /// Answers one request line. This is the whole per-request path —
    /// admission control, cache, optimize, render — and is what the
    /// bench harness and the oracle tests drive directly. `None` for
    /// blank lines (which produce no response).
    pub fn respond_line(&self, line: &str) -> Option<String> {
        let reply = self.respond(&Incoming::Line(line.to_string()))?;
        if let Some(verdict) = &reply.verdict {
            self.settle(verdict);
        }
        Some(reply.line)
    }

    /// Shards `lines` across the worker pool and returns the responses
    /// in request order (blank lines yield empty strings).
    pub fn respond_batch(self: &Arc<Server>, jobs: usize, lines: &[String]) -> Vec<String> {
        let incoming: Vec<Incoming> = lines
            .iter()
            .map(|l| self.classify(l.clone(), l.len()))
            .collect();
        self.process_batch(jobs, incoming)
            .into_iter()
            .map(|r| r.map(|r| r.line).unwrap_or_default())
            .collect()
    }

    /// Length-gates a raw line into an [`Incoming`].
    fn classify(&self, line: String, raw_len: usize) -> Incoming {
        if raw_len > self.opts.max_request_bytes {
            Incoming::Oversized(raw_len)
        } else {
            Incoming::Line(line)
        }
    }

    /// The per-item watchdog deadlines: explicit knobs win, otherwise
    /// the soft phase is twice the admitted wall budget (the ladder
    /// should have degraded long before) and the hard phase one second
    /// past that.
    fn watchdog(&self) -> (Option<Duration>, Option<Duration>) {
        let soft_ms = self
            .opts
            .watchdog_soft_ms
            .or(self.opts.wall_ms.map(|w| w.saturating_mul(2).max(50)));
        let hard_ms = self
            .opts
            .watchdog_hard_ms
            .or(soft_ms.map(|s| s.saturating_add(1_000)));
        (
            soft_ms.map(Duration::from_millis),
            hard_ms.map(Duration::from_millis),
        )
    }

    /// Runs one batch through the supervised pool. Panicking items come
    /// back as structured internal errors instead of poisoning the
    /// batch; a wedged item (hard watchdog deadline) is abandoned and
    /// answered as an identity-rung response while its siblings finish
    /// on a replacement worker.
    fn process_batch(self: &Arc<Server>, jobs: usize, batch: Vec<Incoming>) -> Vec<Option<Reply>> {
        serve_metrics::BATCH_ITEMS.observe(batch.len() as u64);
        let items: Vec<Arc<Incoming>> = batch.into_iter().map(Arc::new).collect();
        let originals = items.clone();
        let (soft_deadline, hard_deadline) = self.watchdog();
        let worker = {
            let server = Arc::clone(self);
            move |_: usize, inc: &Arc<Incoming>| server.respond(inc)
        };
        let opts = SupervisorOptions {
            jobs,
            soft_deadline,
            hard_deadline,
        };
        supervised_map(opts, items, worker)
            .into_iter()
            .enumerate()
            .map(|(i, outcome)| match outcome {
                ItemOutcome::Done(reply) => {
                    if let Some(verdict) = reply.as_ref().and_then(|r| r.verdict.as_ref()) {
                        self.settle(verdict);
                    }
                    reply
                }
                ItemOutcome::Panicked(p) => {
                    self.count(Status::Internal);
                    Some(Reply {
                        line: render_error(
                            &None,
                            Status::Internal,
                            &format!("internal error: worker panicked: {}", p.message),
                        ),
                        shutdown: false,
                        verdict: None,
                    })
                }
                ItemOutcome::Wedged => Some(self.wedged_reply(&originals[i])),
            })
            .collect()
    }

    /// Applies a computed answer's verdict to the quarantine and the
    /// breaker. Runs on the dispatcher (exactly once per answered
    /// item), so zombie workers abandoned by the watchdog never settle.
    fn settle(&self, verdict: &Verdict) {
        {
            let mut quarantine = self.quarantine.lock().expect("quarantine lock");
            if verdict.failed {
                quarantine.strike(verdict.key);
            } else {
                quarantine.absolve(verdict.key);
            }
        }
        let mut breaker = self.breaker.lock().expect("breaker lock");
        breaker.record(verdict.failed);
        serve_metrics::BREAKER_STATE.set(breaker.state().gauge());
    }

    /// Synthesizes the answer for a request whose worker blew the hard
    /// watchdog deadline: the program comes back unchanged at the
    /// `"watchdog-timeout"` rung, the hash is struck, and the breaker
    /// records a failure — a repeat offender is quarantined before it
    /// can hold another batch hostage.
    fn wedged_reply(&self, incoming: &Incoming) -> Reply {
        self.wedged.fetch_add(1, Ordering::Relaxed);
        serve_metrics::WATCHDOG_TIMEOUTS.inc();
        if let Incoming::Line(line) = incoming {
            if let Ok(req) = Request::decode(line) {
                if let Ok(parsed) = parse(&req.program) {
                    let canonical = print_program(&parsed);
                    let admitted = self.admit(&req);
                    let options = self.canonical_options(&req, &admitted);
                    let key = CacheKey::compute(&canonical, &options);
                    self.settle(&Verdict { key, failed: true });
                    self.count(Status::Ok);
                    let payload = identity_payload(canonical, "watchdog-timeout");
                    return Reply {
                        line: render_result(&req.id, &payload),
                        shutdown: false,
                        verdict: None,
                    };
                }
                self.count(Status::Internal);
                return Reply {
                    line: render_error(
                        &req.id,
                        Status::Internal,
                        "internal error: request abandoned past the hard watchdog deadline",
                    ),
                    shutdown: false,
                    verdict: None,
                };
            }
        }
        self.count(Status::Internal);
        Reply {
            line: render_error(
                &None,
                Status::Internal,
                "internal error: request abandoned past the hard watchdog deadline",
            ),
            shutdown: false,
            verdict: None,
        }
    }

    fn count(&self, status: Status) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (local, label) = match status {
            Status::Ok => (&self.ok, "ok"),
            Status::BadInput => (&self.bad_input, "bad_input"),
            Status::Internal => (&self.internal, "internal"),
        };
        local.fetch_add(1, Ordering::Relaxed);
        serve_metrics::requests(label).inc();
    }

    fn respond(&self, incoming: &Incoming) -> Option<Reply> {
        let started = Instant::now();
        let reply = match incoming {
            Incoming::Oversized(len) => {
                self.count(Status::BadInput);
                Some(Reply {
                    line: render_error(
                        &None,
                        Status::BadInput,
                        &format!(
                            "request of {len} bytes exceeds the {}-byte limit",
                            self.opts.max_request_bytes
                        ),
                    ),
                    shutdown: false,
                    verdict: None,
                })
            }
            Incoming::BadUtf8 => {
                self.count(Status::BadInput);
                Some(Reply {
                    line: render_error(&None, Status::BadInput, "request is not valid UTF-8"),
                    shutdown: false,
                    verdict: None,
                })
            }
            Incoming::Line(line) => {
                if line.trim().is_empty() {
                    return None;
                }
                Some(self.respond_request(line))
            }
        };
        serve_metrics::REQUEST_WALL.observe(started.elapsed().as_nanos() as u64);
        reply
    }

    fn respond_request(&self, line: &str) -> Reply {
        let req = match Request::decode(line) {
            Ok(req) => req,
            Err(msg) => {
                self.count(Status::BadInput);
                return Reply {
                    line: render_error(&None, Status::BadInput, &msg),
                    shutdown: false,
                    verdict: None,
                };
            }
        };
        match req.op {
            Op::Ping => {
                self.count(Status::Ok);
                Reply {
                    line: render_pong(&req.id),
                    shutdown: false,
                    verdict: None,
                }
            }
            Op::Health => {
                self.count(Status::Ok);
                Reply {
                    line: self.health_reply(&req.id),
                    shutdown: false,
                    verdict: None,
                }
            }
            Op::Shutdown => {
                self.count(Status::Ok);
                self.stop.store(true, Ordering::Relaxed);
                Reply {
                    line: render_shutdown(&req.id),
                    shutdown: true,
                    verdict: None,
                }
            }
            Op::Optimize => {
                let (line, status, verdict) = self.optimize_request(&req);
                self.count(status);
                Reply {
                    line,
                    shutdown: false,
                    verdict,
                }
            }
        }
    }

    /// Renders the `health` introspection answer: every self-healing
    /// counter as one flat JSON object.
    fn health_reply(&self, id: &Option<String>) -> String {
        let (cache_entries, cache_bytes, cache_hits, cache_misses, wal_stats, wal_errors, report) = {
            let cache = self.cache.lock().expect("cache lock");
            (
                cache.len() as u64,
                cache.bytes(),
                cache.hits,
                cache.misses,
                cache.wal_stats(),
                cache.wal_errors,
                cache.load_report,
            )
        };
        let (wal_appends, wal_fsyncs, wal_compactions) = wal_stats;
        let (quarantine_size, quarantine_hits) = {
            let quarantine = self.quarantine.lock().expect("quarantine lock");
            (quarantine.len() as u64, quarantine.hits)
        };
        let (breaker_state, breaker_trips) = {
            let breaker = self.breaker.lock().expect("breaker lock");
            (breaker.state(), breaker.trips)
        };
        let fields: Vec<(&'static str, String)> = vec![
            (
                "requests",
                self.requests.load(Ordering::Relaxed).to_string(),
            ),
            ("ok", self.ok.load(Ordering::Relaxed).to_string()),
            (
                "bad_input",
                self.bad_input.load(Ordering::Relaxed).to_string(),
            ),
            (
                "internal",
                self.internal.load(Ordering::Relaxed).to_string(),
            ),
            ("cache_entries", cache_entries.to_string()),
            ("cache_bytes", cache_bytes.to_string()),
            ("cache_hits", cache_hits.to_string()),
            ("cache_misses", cache_misses.to_string()),
            ("wal_appends", wal_appends.to_string()),
            ("wal_fsyncs", wal_fsyncs.to_string()),
            ("wal_compactions", wal_compactions.to_string()),
            ("wal_recovered", (report.loaded as u64).to_string()),
            ("wal_discarded", (report.skipped as u64).to_string()),
            ("wal_errors", wal_errors.to_string()),
            ("quarantine_size", quarantine_size.to_string()),
            ("quarantine_hits", quarantine_hits.to_string()),
            ("breaker_state", format!("\"{}\"", breaker_state.label())),
            ("breaker_trips", breaker_trips.to_string()),
            ("retries", self.retries.load(Ordering::Relaxed).to_string()),
            ("wedged", self.wedged.load(Ordering::Relaxed).to_string()),
        ];
        render_health(id, &fields)
    }

    /// Caps a requested budget by the server-wide bound: a request may
    /// lower a cap, never raise or remove it.
    fn admitted(requested: Option<u64>, cap: Option<u64>) -> Option<u64> {
        match (requested, cap) {
            (Some(r), Some(c)) => Some(r.min(c)),
            (Some(r), None) => Some(r),
            (None, cap) => cap,
        }
    }

    /// The solver this request runs under: its own `solver` option if
    /// given, else the server-wide `--solver`, else the ambient
    /// selection (`None`).
    fn effective_solver(&self, req: &Request) -> Option<pdce_dfa::SolverStrategy> {
        req.solver.or(self.opts.strategy)
    }

    /// The canonical option string keyed alongside the program text.
    /// The solver tag is part of the key — the differential oracles
    /// prove the strategies agree on the output, but keying them apart
    /// keeps every cached byte attributable to one exact configuration.
    /// Incrementality remains excluded on purpose.
    fn canonical_options(&self, req: &Request, admitted: &AdmittedBudget) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
        format!(
            "mode={};rounds={};pops={};wall={};validate={};solver={}",
            req.mode.label(),
            opt(admitted.rounds),
            opt(admitted.pops),
            opt(admitted.wall_ms),
            opt(admitted.validate.map(u64::from)),
            self.effective_solver(req).map_or("ambient", |s| s.name()),
        )
    }

    fn admit(&self, req: &Request) -> AdmittedBudget {
        AdmittedBudget {
            rounds: Self::admitted(req.max_rounds, self.opts.max_rounds),
            pops: Self::admitted(req.max_pops, self.opts.max_pops),
            wall_ms: Self::admitted(req.wall_ms, self.opts.wall_ms),
            validate: req.validate.or(self.opts.validate),
        }
    }

    fn config_for(&self, mode: Mode, admitted: &AdmittedBudget) -> PdceConfig {
        let mut config = match mode {
            Mode::Pde => PdceConfig::pde(),
            Mode::Pfe => PdceConfig::pfe(),
            Mode::Dce => PdceConfig::dce_only(),
            Mode::Fce => PdceConfig::fce_only(),
        };
        if let Some(rounds) = admitted.rounds {
            config = config.truncating_after(rounds as usize);
        }
        let budget = Budget {
            max_rounds: None,
            max_pops: admitted.pops,
            wall_time: admitted.wall_ms.map(Duration::from_millis),
        };
        config = config.with_budget(budget);
        match admitted.validate {
            Some(k) if k > 0 => config.with_validation(k),
            _ => config,
        }
    }

    fn optimize_request(&self, req: &Request) -> (String, Status, Option<Verdict>) {
        let admitted = self.admit(req);
        let options = self.canonical_options(req, &admitted);
        let use_cache = self.opts.cache && !req.no_cache;
        // Fast path: a byte-for-byte repeat of an earlier request is
        // answered straight from the alias memo, before any parsing.
        let raw_key = CacheKey::compute(&req.program, &options);
        if use_cache {
            let hit = self
                .cache
                .lock()
                .expect("cache lock")
                .get_raw_alias(raw_key);
            if let Some(payload) = hit {
                serve_metrics::CACHE_HITS.inc();
                return (render_result(&req.id, &payload), Status::Ok, None);
            }
        }
        let parsed = match parse(&req.program) {
            Ok(p) => p,
            Err(e) => {
                let msg = if e.line == 0 {
                    format!("program: {}", e.message)
                } else {
                    format!("program:{}:{}: {}", e.line, e.col, e.message)
                };
                return (
                    render_error(&req.id, Status::BadInput, &msg),
                    Status::BadInput,
                    None,
                );
            }
        };
        // Key on the canonical rendering so formatting differences (and
        // reordered request fields) collapse onto one cache entry.
        let canonical = print_program(&parsed);
        let key = CacheKey::compute(&canonical, &options);
        if use_cache {
            let mut cache = self.cache.lock().expect("cache lock");
            cache.record_alias(raw_key, key);
            if let Some(payload) = cache.get(key) {
                drop(cache);
                serve_metrics::CACHE_HITS.inc();
                return (render_result(&req.id, &payload), Status::Ok, None);
            }
            serve_metrics::CACHE_MISSES.inc();
        }
        // Quarantine short-circuit: a hash with a strike record is not
        // allowed near the solvers again — it gets a structured
        // identity answer instead of a fourth chance to take a worker
        // hostage.
        if self.opts.max_strikes > 0 {
            let quarantined = self.quarantine.lock().expect("quarantine lock").check(key);
            if quarantined {
                serve_metrics::QUARANTINE_HITS.inc();
                let payload = identity_payload(canonical, "quarantined");
                return (render_result(&req.id, &payload), Status::Ok, None);
            }
        }
        // Circuit breaker: when the rolling failure rate has tripped
        // it, admission degrades batch-wide to the identity rung until
        // half-open probes succeed. Denied requests are not breaker
        // samples (no verdict).
        let admit_full = {
            let mut breaker = self.breaker.lock().expect("breaker lock");
            let admit = breaker.admit();
            serve_metrics::BREAKER_STATE.set(breaker.state().gauge());
            admit
        };
        if !admit_full {
            let payload = identity_payload(canonical, "breaker-open");
            return (render_result(&req.id, &payload), Status::Ok, None);
        }
        let (payload, failed) = self.attempt_with_retries(req, &admitted, &canonical, parsed);
        // Only clean, un-retried answers are cached: a transient
        // degradation must not pin a worse answer for every warm
        // replay that follows.
        if use_cache && !failed {
            self.cache
                .lock()
                .expect("cache lock")
                .insert(key, payload.clone());
        }
        (
            render_result(&req.id, &payload),
            Status::Ok,
            Some(Verdict { key, failed }),
        )
    }

    /// Runs the optimization with the retry ladder wrapped around the
    /// resilience ladder: an attempt that *escapes*
    /// [`optimize_resilient`] (our bug, or an injected `serve`-site
    /// fault) is retried after a capped exponential backoff on a
    /// progressively lower configuration — full, then one reduced
    /// round, then elimination-only — before giving up and answering
    /// identity. Returns the payload plus whether the answer counts as
    /// a failure (degraded rung or any retry).
    fn attempt_with_retries(
        &self,
        req: &Request,
        admitted: &AdmittedBudget,
        canonical: &str,
        parsed: pdce_ir::Program,
    ) -> (ResultPayload, bool) {
        const MAX_ATTEMPTS: u32 = 3;
        const BACKOFF_CAP_MS: u64 = 100;
        let mut prog_slot = Some(parsed);
        let mut attempt = 0u32;
        loop {
            let reduced = AdmittedBudget {
                rounds: Some(1),
                validate: None,
                ..*admitted
            };
            let config = match attempt {
                0 => self.config_for(req.mode, admitted),
                1 => self.config_for(req.mode, &reduced),
                _ => self.config_for(Mode::Dce, &reduced),
            };
            let mut prog = match prog_slot.take().or_else(|| parse(canonical).ok()) {
                Some(p) => p,
                None => return (identity_payload(canonical.to_string(), "identity"), true),
            };
            let outcome = pdce_trace::sandbox::catch(|| {
                pdce_trace::fault::fire("serve");
                let prog = &mut prog;
                let mut run = move || optimize_resilient(prog, &config);
                let run = move || match self.effective_solver(req) {
                    Some(s) => pdce_dfa::with_strategy(s, run),
                    None => run(),
                };
                if self.opts.incremental {
                    run()
                } else {
                    pdce_dfa::with_incremental(false, run)
                }
            });
            match outcome {
                Ok(stats) => {
                    let payload = ResultPayload {
                        program: print_program(&prog),
                        rounds: stats.rounds,
                        eliminated: stats.eliminated_assignments,
                        sunk: stats.sunk_assignments,
                        inserted: stats.inserted_assignments,
                        rung: stats.degraded.map_or("none", |m| m.label()).to_string(),
                    };
                    return (payload, stats.degraded.is_some() || attempt > 0);
                }
                Err(_) => {
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    serve_metrics::RETRIES.inc();
                    if attempt >= MAX_ATTEMPTS {
                        return (identity_payload(canonical.to_string(), "identity"), true);
                    }
                    let backoff = self
                        .opts
                        .retry_backoff_ms
                        .saturating_mul(1 << (attempt - 1))
                        .min(BACKOFF_CAP_MS);
                    if backoff > 0 {
                        std::thread::sleep(Duration::from_millis(backoff));
                    }
                }
            }
        }
    }

    /// Serves one connection: `reader` → batched requests → `writer`.
    /// Returns when the reader hits EOF or a `shutdown` request is
    /// processed; either way every request read before that point has
    /// been answered and flushed (the drain guarantee), and the cache
    /// has been persisted.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures on the response stream and cache
    /// persistence failures at exit.
    pub fn serve<R, W>(
        self: &Arc<Server>,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<ServeSummary>
    where
        R: Read + Send + 'static,
        W: Write,
    {
        let (tx, rx) = mpsc::channel::<Incoming>();
        let max_line = self.opts.max_request_bytes;
        let reader_server = Arc::clone(self);
        // The reader thread is detached on the shutdown path (it may be
        // parked in a blocking read); it exits on EOF, on a send to a
        // closed channel, or on the stop flag.
        std::thread::spawn(move || {
            let mut reader = std::io::BufReader::new(reader);
            loop {
                if reader_server.stop.load(Ordering::Relaxed) {
                    break;
                }
                match read_bounded_line(&mut reader, max_line, &reader_server.stop) {
                    None => break,
                    Some(incoming) => {
                        if tx.send(incoming).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let jobs = self.opts.jobs.max(1);
        let max_batch = jobs.saturating_mul(8).max(1);
        let mut stopping = false;
        while !stopping {
            let first = match rx.recv() {
                Ok(first) => first,
                Err(_) => break, // EOF: reader gone, queue drained
            };
            let mut batch = vec![first];
            while batch.len() < max_batch {
                match rx.try_recv() {
                    Ok(next) => batch.push(next),
                    Err(_) => break,
                }
            }
            stopping = self.write_batch(jobs, batch, &mut writer)?;
        }
        // Drain guarantee: everything the reader had already queued
        // before shutdown still gets an answer.
        if stopping {
            let rest: Vec<Incoming> = rx.try_iter().collect();
            if !rest.is_empty() {
                self.write_batch(jobs, rest, &mut writer)?;
            }
        }
        self.save_cache()?;
        Ok(self.summary())
    }

    /// Processes one batch and writes the responses in request order.
    /// Returns whether a shutdown request was in the batch.
    fn write_batch<W: Write>(
        self: &Arc<Server>,
        jobs: usize,
        batch: Vec<Incoming>,
        writer: &mut W,
    ) -> std::io::Result<bool> {
        let mut stopping = false;
        for reply in self.process_batch(jobs, batch).into_iter().flatten() {
            writer.write_all(reply.line.as_bytes())?;
            writer.write_all(b"\n")?;
            stopping |= reply.shutdown;
        }
        writer.flush()?;
        Ok(stopping)
    }

    /// Accept loop over a TCP listener; one dispatcher per connection,
    /// all sharing this server (and its cache). Returns once a
    /// `shutdown` request has been served on any connection and every
    /// connection has drained.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept configuration failures.
    pub fn serve_tcp(
        self: &Arc<Server>,
        listener: std::net::TcpListener,
    ) -> std::io::Result<ServeSummary> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| -> std::io::Result<()> {
            let mut idle = IdleBackoff::new();
            loop {
                if self.stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        idle.reset();
                        stream.set_nonblocking(false)?;
                        // A finite read timeout lets idle connections
                        // notice a fleet-wide shutdown promptly.
                        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                        let server = Arc::clone(self);
                        let write_half = stream.try_clone()?;
                        scope.spawn(move || {
                            let _ = server.serve(stream, write_half);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(idle.next());
                    }
                    Err(e) => return Err(e),
                }
            }
        })?;
        self.save_cache()?;
        Ok(self.summary())
    }

    /// Accept loop over a Unix-domain listener (see [`Server::serve_tcp`]).
    ///
    /// # Errors
    ///
    /// Propagates bind/accept configuration failures.
    #[cfg(unix)]
    pub fn serve_unix(
        self: &Arc<Server>,
        listener: std::os::unix::net::UnixListener,
    ) -> std::io::Result<ServeSummary> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| -> std::io::Result<()> {
            let mut idle = IdleBackoff::new();
            loop {
                if self.stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        idle.reset();
                        stream.set_nonblocking(false)?;
                        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                        let server = Arc::clone(self);
                        let write_half = stream.try_clone()?;
                        scope.spawn(move || {
                            let _ = server.serve(stream, write_half);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(idle.next());
                    }
                    Err(e) => return Err(e),
                }
            }
        })?;
        self.save_cache()?;
        Ok(self.summary())
    }
}

/// Effective (post-admission) per-request budgets.
#[derive(Clone, Copy)]
struct AdmittedBudget {
    rounds: Option<u64>,
    pops: Option<u64>,
    wall_ms: Option<u64>,
    validate: Option<u32>,
}

/// The unchanged-program answer used by every short-circuit: the
/// quarantine, the open breaker, watchdog timeouts, and exhausted
/// retries. Always correct (the identity transformation), always
/// cheap, never cached.
fn identity_payload(program: String, rung: &str) -> ResultPayload {
    ResultPayload {
        program,
        rounds: 0,
        eliminated: 0,
        sunk: 0,
        inserted: 0,
        rung: rung.to_string(),
    }
}

/// Exponential idle backoff for the polling loops (connection reads
/// and transport accepts): consecutive empty polls sleep 1, 2, 4, …
/// 250 ms instead of spinning at a fixed period, so an idle daemon
/// wakes a handful of times per second instead of fifty, while the
/// first byte after an idle stretch still lands within one capped
/// interval. Reset on any progress.
struct IdleBackoff {
    wait: Duration,
}

const IDLE_BACKOFF_START: Duration = Duration::from_millis(1);
const IDLE_BACKOFF_CAP: Duration = Duration::from_millis(250);

impl IdleBackoff {
    fn new() -> IdleBackoff {
        IdleBackoff {
            wait: IDLE_BACKOFF_START,
        }
    }

    fn reset(&mut self) {
        self.wait = IDLE_BACKOFF_START;
    }

    /// The sleep for this empty poll; doubles (to the cap) for the next.
    fn next(&mut self) -> Duration {
        serve_metrics::IDLE_WAKEUPS.inc();
        let wait = self.wait;
        self.wait = (self.wait * 2).min(IDLE_BACKOFF_CAP);
        wait
    }
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `max_bytes + 1` of it: an over-long line is consumed to its newline
/// but surfaced as [`Incoming::Oversized`], so a hostile client cannot
/// balloon the daemon's memory. `None` at EOF (a final unterminated
/// fragment still counts as a line). On a read timeout (socket
/// transports set one so shutdown can propagate across idle
/// connections) the read is retried until `stop` is raised, with
/// exponential idle backoff between empty polls so an idle connection
/// costs a handful of wakeups per second, not a 50 ms-period spin.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
    stop: &AtomicBool,
) -> Option<Incoming> {
    let mut buf: Vec<u8> = Vec::new();
    let mut seen: usize = 0;
    let mut overflowed = false;
    let mut idle = IdleBackoff::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                // EOF: emit whatever this line accumulated.
                return if seen == 0 {
                    None
                } else {
                    Some(finish_line(buf, seen, overflowed))
                };
            }
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return None;
                }
                std::thread::sleep(idle.next());
                continue;
            }
            Err(_) => return None,
        };
        idle.reset();
        let (line_part, ate, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => (&chunk[..nl], nl + 1, true),
            None => (chunk, chunk.len(), false),
        };
        seen += line_part.len();
        if seen > max_bytes {
            overflowed = true;
            buf.clear();
        } else {
            buf.extend_from_slice(line_part);
        }
        reader.consume(ate);
        if done {
            return Some(finish_line(buf, seen, overflowed));
        }
    }
}

fn finish_line(buf: Vec<u8>, seen: usize, overflowed: bool) -> Incoming {
    if overflowed {
        return Incoming::Oversized(seen);
    }
    match String::from_utf8(buf) {
        Ok(mut s) => {
            if s.ends_with('\r') {
                s.pop();
            }
            Incoming::Line(s)
        }
        Err(_) => Incoming::BadUtf8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";

    fn server() -> Arc<Server> {
        Arc::new(Server::new(ServeOptions::default()))
    }

    fn request(program: &str) -> String {
        crate::protocol::encode_request(Some("t"), program, Mode::Pde)
    }

    #[test]
    fn serves_an_optimize_request() {
        let s = server();
        let line = s.respond_line(&request(FIG1)).unwrap();
        let doc = pdce_trace::json::parse(&line).unwrap();
        assert_eq!(doc.get("status").unwrap().as_num(), Some(0.0));
        let optimized = doc.get("program").unwrap().as_str().unwrap();
        let reparsed = pdce_ir::parser::parse(optimized).unwrap();
        let n1 = reparsed.block_by_name("n1").unwrap();
        assert!(reparsed.block(n1).stmts.is_empty(), "assignment was sunk");
        assert_eq!(doc.get("eliminated").unwrap().as_num(), Some(1.0));
        assert_eq!(doc.get("rung").unwrap().as_str(), Some("none"));
    }

    #[test]
    fn warm_answers_are_byte_identical_and_hit_the_cache() {
        let s = server();
        let cold = s.respond_line(&request(FIG1)).unwrap();
        let warm = s.respond_line(&request(FIG1)).unwrap();
        assert_eq!(cold, warm);
        let summary = s.summary();
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 1);
        // A formatting-only change of the program still hits.
        let reformatted = FIG1.replace("  ", " ");
        let warm2 = s.respond_line(&request(&reformatted)).unwrap();
        assert_eq!(cold, warm2);
        assert_eq!(s.summary().cache_hits, 2);
    }

    #[test]
    fn no_cache_requests_bypass_the_cache() {
        let s = server();
        let line = request(FIG1).replace("\"mode\"", "\"no_cache\":true,\"mode\"");
        s.respond_line(&line).unwrap();
        s.respond_line(&line).unwrap();
        let summary = s.summary();
        assert_eq!(summary.cache_hits + summary.cache_misses, 0);
    }

    #[test]
    fn parse_errors_are_status_1_with_position() {
        let s = server();
        let line = s.respond_line(&request("prog { block x {")).unwrap();
        let doc = pdce_trace::json::parse(&line).unwrap();
        assert_eq!(doc.get("status").unwrap().as_num(), Some(1.0));
        let msg = doc.get("error").unwrap().as_str().unwrap();
        assert!(msg.starts_with("program:"), "positioned: {msg}");
    }

    #[test]
    fn serve_loop_answers_in_order_and_drains_at_eof() {
        let s = server();
        let input = format!(
            "{}\n{}\nnot json\n{}\n",
            request(FIG1),
            r#"{"op":"ping","id":"p"}"#,
            request("prog { block e { halt } }"),
        );
        let mut out = Vec::new();
        let summary = s
            .serve(std::io::Cursor::new(input.into_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "one response per request:\n{text}");
        assert!(lines[1].contains("\"pong\":true"));
        assert!(lines[2].contains("\"status\":1"));
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.ok, 3);
        assert_eq!(summary.bad_input, 1);
        assert!(!summary.shutdown);
    }

    #[test]
    fn shutdown_request_stops_the_loop_but_answers_everything_read() {
        let s = server();
        let input = format!(
            "{}\n{}\n{}\n",
            request(FIG1),
            r#"{"op":"shutdown","id":"bye"}"#,
            r#"{"op":"ping","id":"late"}"#,
        );
        let mut out = Vec::new();
        let summary = s
            .serve(std::io::Cursor::new(input.into_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(summary.shutdown);
        assert!(text.contains("\"shutdown\":true"));
        // The late ping was already queued when shutdown processed, so
        // the drain answers it (never silently drops read requests).
        assert!(text.contains("\"id\":\"late\""));
    }

    #[test]
    fn oversized_lines_are_rejected_with_bounded_memory() {
        let opts = ServeOptions {
            max_request_bytes: 256,
            ..ServeOptions::default()
        };
        let s = Arc::new(Server::new(opts));
        let big = format!(
            "{{\"program\":\"{}\"}}\n{}\n",
            "x".repeat(4096),
            r#"{"op":"ping"}"#
        );
        let mut out = Vec::new();
        s.serve(std::io::Cursor::new(big.into_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":1"));
        assert!(lines[0].contains("exceeds"));
        assert!(lines[1].contains("pong"), "daemon kept serving");
    }

    #[test]
    fn admission_clamps_request_budgets_to_server_caps() {
        assert_eq!(Server::admitted(Some(5), Some(3)), Some(3));
        assert_eq!(Server::admitted(Some(2), Some(3)), Some(2));
        assert_eq!(Server::admitted(None, Some(3)), Some(3));
        assert_eq!(Server::admitted(Some(9), None), Some(9));
        assert_eq!(Server::admitted(None, None), None);
    }

    /// A request that deterministically degrades down the full ladder:
    /// a zero pop budget fails every solving rung, so the answer comes
    /// from the identity rung with a failure verdict.
    fn poison_request(program: &str) -> String {
        let mut escaped = String::new();
        pdce_trace::json::write_escaped(&mut escaped, program);
        format!("{{\"id\":\"p\",\"program\":{escaped},\"max_pops\":0,\"no_cache\":true}}")
    }

    fn rung_of(line: &str) -> String {
        pdce_trace::json::parse(line)
            .unwrap()
            .get("rung")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn health_op_reports_the_self_healing_counters() {
        let s = server();
        s.respond_line(&request(FIG1)).unwrap();
        let line = s.respond_line(r#"{"op":"health","id":"h"}"#).unwrap();
        let doc = pdce_trace::json::parse(&line).unwrap();
        assert_eq!(doc.get("status").unwrap().as_num(), Some(0.0));
        assert_eq!(doc.get("health").unwrap().as_bool(), Some(true));
        // The health request itself is counted before it renders.
        assert_eq!(doc.get("requests").unwrap().as_num(), Some(2.0));
        assert_eq!(doc.get("breaker_state").unwrap().as_str(), Some("closed"));
        for key in [
            "cache_entries",
            "wal_appends",
            "wal_recovered",
            "quarantine_size",
            "quarantine_hits",
            "breaker_trips",
            "retries",
            "wedged",
        ] {
            assert!(
                doc.get(key).is_some(),
                "health field `{key}` missing: {line}"
            );
        }
    }

    #[test]
    fn repeated_failures_quarantine_the_program_hash() {
        let s = Arc::new(Server::new(ServeOptions {
            max_strikes: 2,
            ..ServeOptions::default()
        }));
        let line = poison_request(FIG1);
        for i in 0..2 {
            let response = s.respond_line(&line).unwrap();
            assert_eq!(
                rung_of(&response),
                "identity",
                "strike {i} still runs the ladder"
            );
        }
        // Third offense: short-circuited by the quarantine, never near
        // the solvers again.
        let response = s.respond_line(&line).unwrap();
        assert_eq!(rung_of(&response), "quarantined");
        let health = s.respond_line(r#"{"op":"health"}"#).unwrap();
        let doc = pdce_trace::json::parse(&health).unwrap();
        assert_eq!(doc.get("quarantine_size").unwrap().as_num(), Some(1.0));
        assert_eq!(doc.get("quarantine_hits").unwrap().as_num(), Some(1.0));
        // A different (clean) program is unaffected.
        let clean = s
            .respond_line(&request("prog { block e { halt } }"))
            .unwrap();
        assert_eq!(rung_of(&clean), "none");
    }

    #[test]
    fn a_failing_window_trips_the_breaker_to_identity_admission() {
        let s = Arc::new(Server::new(ServeOptions {
            max_strikes: 0, // isolate the breaker from the quarantine
            ..ServeOptions::default()
        }));
        // 16 distinct failing programs fill the rolling window.
        for i in 0..16 {
            let program = format!(
                "prog {{ block s {{ v{i} := {i}; out(v{i}); goto e }} block e {{ halt }} }}"
            );
            let response = s.respond_line(&poison_request(&program)).unwrap();
            assert_eq!(rung_of(&response), "identity");
        }
        // Tripped: even a clean request is served at the identity rung.
        let denied = s.respond_line(&request(FIG1)).unwrap();
        assert_eq!(rung_of(&denied), "breaker-open");
        let health = s.respond_line(r#"{"op":"health"}"#).unwrap();
        let doc = pdce_trace::json::parse(&health).unwrap();
        assert_eq!(doc.get("breaker_state").unwrap().as_str(), Some("open"));
        assert_eq!(doc.get("breaker_trips").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn escaped_failures_retry_on_a_lower_rung_with_backoff() {
        let s = Arc::new(Server::new(ServeOptions {
            retry_backoff_ms: 1,
            ..ServeOptions::default()
        }));
        // The first attempt panics at the serve site; the retry (second
        // occurrence) runs clean on the reduced configuration.
        let response = pdce_trace::fault::with_faults("panic:serve:1", || {
            s.respond_line(&request(FIG1)).unwrap()
        });
        assert_eq!(status_of_line(&response), 0.0);
        assert_eq!(rung_of(&response), "none");
        let health = s.respond_line(r#"{"op":"health"}"#).unwrap();
        let doc = pdce_trace::json::parse(&health).unwrap();
        assert_eq!(doc.get("retries").unwrap().as_num(), Some(1.0));
        // A persistent escape exhausts the ladder and answers identity.
        let always = pdce_trace::fault::with_faults("panic:serve:*", || {
            s.respond_line(&poison_request(FIG1)).unwrap()
        });
        assert_eq!(status_of_line(&always), 0.0);
        assert_eq!(rung_of(&always), "identity");
    }

    fn status_of_line(line: &str) -> f64 {
        pdce_trace::json::parse(line)
            .unwrap()
            .get("status")
            .unwrap()
            .as_num()
            .unwrap()
    }

    #[test]
    fn retried_answers_are_not_cached() {
        let s = Arc::new(Server::new(ServeOptions {
            retry_backoff_ms: 0,
            ..ServeOptions::default()
        }));
        // The retried answer ran a reduced configuration; caching it
        // would pin the worse answer for every warm replay.
        let retried = pdce_trace::fault::with_faults("panic:serve:1", || {
            s.respond_line(&request(FIG1)).unwrap()
        });
        let clean = s.respond_line(&request(FIG1)).unwrap();
        assert_eq!(status_of_line(&retried), 0.0);
        assert_eq!(status_of_line(&clean), 0.0);
        assert_eq!(s.summary().cache_hits, 0, "retried answer was cached");
    }

    #[test]
    fn idle_backoff_doubles_to_a_cap_and_resets() {
        let mut b = IdleBackoff::new();
        let mut total = Duration::ZERO;
        let mut wakeups = 0u32;
        while total < Duration::from_secs(10) {
            total += b.next();
            wakeups += 1;
        }
        // The old fixed 20 ms poll would wake 500 times over the same
        // stretch; the capped exponential schedule wakes ~47 times.
        assert!(wakeups < 60, "idle schedule woke {wakeups} times in 10 s");
        assert_eq!(b.next(), IDLE_BACKOFF_CAP, "schedule saturates at the cap");
        b.reset();
        assert_eq!(b.next(), IDLE_BACKOFF_START, "progress resets the schedule");
    }

    #[test]
    fn bounded_reader_handles_split_and_unterminated_lines() {
        let stop = AtomicBool::new(false);
        let mut r =
            std::io::BufReader::with_capacity(4, std::io::Cursor::new(b"abcdef\ngh".to_vec()));
        let Some(Incoming::Line(a)) = read_bounded_line(&mut r, 64, &stop) else {
            panic!("line expected");
        };
        assert_eq!(a, "abcdef");
        let Some(Incoming::Line(b)) = read_bounded_line(&mut r, 64, &stop) else {
            panic!("unterminated tail expected");
        };
        assert_eq!(b, "gh");
        assert!(read_bounded_line(&mut r, 64, &stop).is_none());
    }
}
