//! The serving loop: admission control, cache, pool sharding, transport.
//!
//! A [`Server`] is a stateless-per-request engine plus two shared
//! resources: the persistent result cache and the configured budget
//! caps. Connections feed it newline-delimited requests; each
//! connection runs an *adaptive batching* dispatcher — block for the
//! first pending line, then greedily drain whatever else has already
//! arrived (up to `jobs * 8`) and shard the batch across the
//! `pdce-par` pool. An idle client gets single-request latency; a
//! flooding client gets full-pool throughput; and because the pool
//! reassembles results in item order, responses always come back in
//! request order regardless of worker count.
//!
//! Admission control is the PR 5 budget machinery turned per-request: a
//! request may lower but never raise the server's round/pop/wall caps,
//! and an exhausted budget degrades that one request down the
//! resilience ladder (the answer is still served, labelled with its
//! rung) instead of stalling the fleet. A worker panic is sandboxed by
//! the pool and answered as a structured `status` 2 error.

use std::io::{BufRead, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pdce_core::driver::{optimize_resilient, PdceConfig};
use pdce_dfa::SolverStrategy;
use pdce_ir::parser::parse;
use pdce_ir::printer::print_program;
use pdce_trace::budget::Budget;

use crate::cache::{CacheKey, PersistentCache};
use crate::protocol::{
    render_error, render_pong, render_result, render_shutdown, Mode, Op, Request, ResultPayload,
    Status,
};

/// Registry handles for the serving plane. Request/cache counters are
/// deterministic for a fixed request sequence; latency and batch-size
/// families are timing-dependent and registered as such.
mod serve_metrics {
    use pdce_metrics::{global, Counter, Histogram, Stability};
    use std::sync::{Arc, LazyLock};

    pub fn requests(status: &'static str) -> Arc<Counter> {
        global().counter(
            "pdce_serve_requests_total",
            "Requests answered by the serve loop, by response status",
            Stability::Deterministic,
            &[("status", status)],
        )
    }

    fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
        global().counter(name, help, Stability::Deterministic, &[])
    }

    pub static CACHE_HITS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_cache_hits_total",
            "Requests answered from the persistent result cache",
        )
    });
    pub static CACHE_MISSES: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_cache_misses_total",
            "Cacheable requests that had to be computed",
        )
    });
    pub static REQUEST_WALL: LazyLock<Arc<Histogram>> = LazyLock::new(|| {
        global().histogram(
            "pdce_serve_request_wall_ns",
            "Per-request end-to-end serve latency in nanoseconds",
            Stability::Timing,
            &[],
        )
    });
    pub static BATCH_ITEMS: LazyLock<Arc<Histogram>> = LazyLock::new(|| {
        global().histogram(
            "pdce_serve_batch_items",
            "Requests per adaptive dispatcher batch",
            Stability::Timing,
            &[],
        )
    });
}

/// Server configuration: transport-independent knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads per connection batch (1 = inline).
    pub jobs: usize,
    /// Explicit solver strategy; `None` uses the ambient selection.
    pub strategy: Option<SolverStrategy>,
    /// Warm-start seeded re-solving between rounds.
    pub incremental: bool,
    /// Server-wide cap on per-request rounds (requests may go lower).
    pub max_rounds: Option<u64>,
    /// Server-wide cap on per-request solver pops.
    pub max_pops: Option<u64>,
    /// Server-wide cap on per-request wall time, milliseconds. The
    /// default admission-control backstop: one hostile request degrades
    /// down the resilience ladder when it trips instead of stalling the
    /// fleet.
    pub wall_ms: Option<u64>,
    /// Translation-validation vectors per round applied to every
    /// request that does not ask for its own count.
    pub validate: Option<u32>,
    /// Requests longer than this many bytes are rejected with a
    /// `status` 1 error before any parsing happens.
    pub max_request_bytes: usize,
    /// Result-cache byte bound (LRU eviction past it).
    pub cache_bytes: u64,
    /// On-disk home of the result cache; `None` keeps it in memory.
    pub cache_path: Option<PathBuf>,
    /// Master switch for the result cache.
    pub cache: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            jobs: 1,
            strategy: None,
            incremental: true,
            max_rounds: None,
            max_pops: None,
            wall_ms: Some(2_000),
            validate: None,
            max_request_bytes: 1 << 20,
            cache_bytes: 64 << 20,
            cache_path: None,
            cache: true,
        }
    }
}

/// Totals of one server's lifetime, rendered by the CLI at exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    pub requests: u64,
    pub ok: u64,
    pub bad_input: u64,
    pub internal: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Whether a `shutdown` request ended the loop (vs EOF).
    pub shutdown: bool,
}

/// One line's fate after the bounded reader.
enum Incoming {
    Line(String),
    Oversized(usize),
    BadUtf8,
}

/// A rendered response plus the shutdown signal it may carry.
struct Reply {
    line: String,
    shutdown: bool,
}

/// The optimization-as-a-service engine.
pub struct Server {
    opts: ServeOptions,
    cache: Mutex<PersistentCache>,
    requests: AtomicU64,
    ok: AtomicU64,
    bad_input: AtomicU64,
    internal: AtomicU64,
    stop: AtomicBool,
}

impl Server {
    /// Builds a server, loading the persistent cache when configured.
    pub fn new(opts: ServeOptions) -> Server {
        let cache = match (&opts.cache_path, opts.cache) {
            (Some(path), true) => PersistentCache::load(path, opts.cache_bytes),
            _ => PersistentCache::in_memory(opts.cache_bytes),
        };
        Server {
            opts,
            cache: Mutex::new(cache),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            bad_input: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The configured options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// What the cache's initial load found (for the CLI banner).
    pub fn cache_load_report(&self) -> crate::cache::LoadReport {
        self.cache.lock().expect("cache lock").load_report
    }

    /// Lifetime totals so far.
    pub fn summary(&self) -> ServeSummary {
        let cache = self.cache.lock().expect("cache lock");
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            bad_input: self.bad_input.load(Ordering::Relaxed),
            internal: self.internal.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            shutdown: self.stop.load(Ordering::Relaxed),
        }
    }

    /// Persists the result cache (a no-op for in-memory caches).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the atomic rewrite.
    pub fn save_cache(&self) -> std::io::Result<()> {
        self.cache.lock().expect("cache lock").save()
    }

    /// Answers one request line. This is the whole per-request path —
    /// admission control, cache, optimize, render — and is what the
    /// bench harness and the oracle tests drive directly. `None` for
    /// blank lines (which produce no response).
    pub fn respond_line(&self, line: &str) -> Option<String> {
        self.respond(&Incoming::Line(line.to_string()))
            .map(|r| r.line)
    }

    /// Shards `lines` across the worker pool and returns the responses
    /// in request order (blank lines yield empty strings).
    pub fn respond_batch(&self, jobs: usize, lines: &[String]) -> Vec<String> {
        let incoming: Vec<Incoming> = lines
            .iter()
            .map(|l| self.classify(l.clone(), l.len()))
            .collect();
        self.process_batch(jobs, &incoming)
            .into_iter()
            .map(|r| r.map(|r| r.line).unwrap_or_default())
            .collect()
    }

    /// Length-gates a raw line into an [`Incoming`].
    fn classify(&self, line: String, raw_len: usize) -> Incoming {
        if raw_len > self.opts.max_request_bytes {
            Incoming::Oversized(raw_len)
        } else {
            Incoming::Line(line)
        }
    }

    /// Runs one batch through the pool; panicking items come back as
    /// structured internal errors instead of poisoning the batch.
    fn process_batch(&self, jobs: usize, batch: &[Incoming]) -> Vec<Option<Reply>> {
        serve_metrics::BATCH_ITEMS.observe(batch.len() as u64);
        pdce_par::try_map_indexed(jobs, batch, |_, inc| self.respond(inc))
            .into_iter()
            .map(|item| match item {
                Ok(reply) => reply,
                Err(p) => {
                    self.count(Status::Internal);
                    Some(Reply {
                        line: render_error(
                            &None,
                            Status::Internal,
                            &format!("internal error: worker panicked: {}", p.message),
                        ),
                        shutdown: false,
                    })
                }
            })
            .collect()
    }

    fn count(&self, status: Status) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (local, label) = match status {
            Status::Ok => (&self.ok, "ok"),
            Status::BadInput => (&self.bad_input, "bad_input"),
            Status::Internal => (&self.internal, "internal"),
        };
        local.fetch_add(1, Ordering::Relaxed);
        serve_metrics::requests(label).inc();
    }

    fn respond(&self, incoming: &Incoming) -> Option<Reply> {
        let started = Instant::now();
        let reply = match incoming {
            Incoming::Oversized(len) => {
                self.count(Status::BadInput);
                Some(Reply {
                    line: render_error(
                        &None,
                        Status::BadInput,
                        &format!(
                            "request of {len} bytes exceeds the {}-byte limit",
                            self.opts.max_request_bytes
                        ),
                    ),
                    shutdown: false,
                })
            }
            Incoming::BadUtf8 => {
                self.count(Status::BadInput);
                Some(Reply {
                    line: render_error(&None, Status::BadInput, "request is not valid UTF-8"),
                    shutdown: false,
                })
            }
            Incoming::Line(line) => {
                if line.trim().is_empty() {
                    return None;
                }
                Some(self.respond_request(line))
            }
        };
        serve_metrics::REQUEST_WALL.observe(started.elapsed().as_nanos() as u64);
        reply
    }

    fn respond_request(&self, line: &str) -> Reply {
        let req = match Request::decode(line) {
            Ok(req) => req,
            Err(msg) => {
                self.count(Status::BadInput);
                return Reply {
                    line: render_error(&None, Status::BadInput, &msg),
                    shutdown: false,
                };
            }
        };
        match req.op {
            Op::Ping => {
                self.count(Status::Ok);
                Reply {
                    line: render_pong(&req.id),
                    shutdown: false,
                }
            }
            Op::Shutdown => {
                self.count(Status::Ok);
                self.stop.store(true, Ordering::Relaxed);
                Reply {
                    line: render_shutdown(&req.id),
                    shutdown: true,
                }
            }
            Op::Optimize => {
                let (line, status) = self.optimize_request(&req);
                self.count(status);
                Reply {
                    line,
                    shutdown: false,
                }
            }
        }
    }

    /// Caps a requested budget by the server-wide bound: a request may
    /// lower a cap, never raise or remove it.
    fn admitted(requested: Option<u64>, cap: Option<u64>) -> Option<u64> {
        match (requested, cap) {
            (Some(r), Some(c)) => Some(r.min(c)),
            (Some(r), None) => Some(r),
            (None, cap) => cap,
        }
    }

    /// The solver this request runs under: its own `solver` option if
    /// given, else the server-wide `--solver`, else the ambient
    /// selection (`None`).
    fn effective_solver(&self, req: &Request) -> Option<pdce_dfa::SolverStrategy> {
        req.solver.or(self.opts.strategy)
    }

    /// The canonical option string keyed alongside the program text.
    /// The solver tag is part of the key — the differential oracles
    /// prove the strategies agree on the output, but keying them apart
    /// keeps every cached byte attributable to one exact configuration.
    /// Incrementality remains excluded on purpose.
    fn canonical_options(&self, req: &Request, admitted: &AdmittedBudget) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
        format!(
            "mode={};rounds={};pops={};wall={};validate={};solver={}",
            req.mode.label(),
            opt(admitted.rounds),
            opt(admitted.pops),
            opt(admitted.wall_ms),
            opt(admitted.validate.map(u64::from)),
            self.effective_solver(req).map_or("ambient", |s| s.name()),
        )
    }

    fn admit(&self, req: &Request) -> AdmittedBudget {
        AdmittedBudget {
            rounds: Self::admitted(req.max_rounds, self.opts.max_rounds),
            pops: Self::admitted(req.max_pops, self.opts.max_pops),
            wall_ms: Self::admitted(req.wall_ms, self.opts.wall_ms),
            validate: req.validate.or(self.opts.validate),
        }
    }

    fn config_for(&self, mode: Mode, admitted: &AdmittedBudget) -> PdceConfig {
        let mut config = match mode {
            Mode::Pde => PdceConfig::pde(),
            Mode::Pfe => PdceConfig::pfe(),
            Mode::Dce => PdceConfig::dce_only(),
            Mode::Fce => PdceConfig::fce_only(),
        };
        if let Some(rounds) = admitted.rounds {
            config = config.truncating_after(rounds as usize);
        }
        let budget = Budget {
            max_rounds: None,
            max_pops: admitted.pops,
            wall_time: admitted.wall_ms.map(Duration::from_millis),
        };
        config = config.with_budget(budget);
        match admitted.validate {
            Some(k) if k > 0 => config.with_validation(k),
            _ => config,
        }
    }

    fn optimize_request(&self, req: &Request) -> (String, Status) {
        let admitted = self.admit(req);
        let options = self.canonical_options(req, &admitted);
        let use_cache = self.opts.cache && !req.no_cache;
        // Fast path: a byte-for-byte repeat of an earlier request is
        // answered straight from the alias memo, before any parsing.
        let raw_key = CacheKey::compute(&req.program, &options);
        if use_cache {
            let hit = self
                .cache
                .lock()
                .expect("cache lock")
                .get_raw_alias(raw_key);
            if let Some(payload) = hit {
                serve_metrics::CACHE_HITS.inc();
                return (render_result(&req.id, &payload), Status::Ok);
            }
        }
        let parsed = match parse(&req.program) {
            Ok(p) => p,
            Err(e) => {
                let msg = if e.line == 0 {
                    format!("program: {}", e.message)
                } else {
                    format!("program:{}:{}: {}", e.line, e.col, e.message)
                };
                return (
                    render_error(&req.id, Status::BadInput, &msg),
                    Status::BadInput,
                );
            }
        };
        // Key on the canonical rendering so formatting differences (and
        // reordered request fields) collapse onto one cache entry.
        let canonical = print_program(&parsed);
        let key = CacheKey::compute(&canonical, &options);
        if use_cache {
            let mut cache = self.cache.lock().expect("cache lock");
            cache.record_alias(raw_key, key);
            if let Some(payload) = cache.get(key) {
                drop(cache);
                serve_metrics::CACHE_HITS.inc();
                return (render_result(&req.id, &payload), Status::Ok);
            }
            serve_metrics::CACHE_MISSES.inc();
        }
        let config = self.config_for(req.mode, &admitted);
        let mut prog = parsed;
        let outcome = pdce_trace::sandbox::catch(|| {
            let prog = &mut prog;
            let mut run = move || optimize_resilient(prog, &config);
            let run = move || match self.effective_solver(req) {
                Some(s) => pdce_dfa::with_strategy(s, run),
                None => run(),
            };
            if self.opts.incremental {
                run()
            } else {
                pdce_dfa::with_incremental(false, run)
            }
        });
        let stats = match outcome {
            Ok(stats) => stats,
            // optimize_resilient is total down to the identity rung;
            // anything escaping it is our bug, answered as status 2.
            Err(e) => {
                return (
                    render_error(&req.id, Status::Internal, &format!("internal error: {e}")),
                    Status::Internal,
                )
            }
        };
        let payload = ResultPayload {
            program: print_program(&prog),
            rounds: stats.rounds,
            eliminated: stats.eliminated_assignments,
            sunk: stats.sunk_assignments,
            inserted: stats.inserted_assignments,
            rung: stats.degraded.map_or("none", |m| m.label()).to_string(),
        };
        if use_cache {
            self.cache
                .lock()
                .expect("cache lock")
                .insert(key, payload.clone());
        }
        (render_result(&req.id, &payload), Status::Ok)
    }

    /// Serves one connection: `reader` → batched requests → `writer`.
    /// Returns when the reader hits EOF or a `shutdown` request is
    /// processed; either way every request read before that point has
    /// been answered and flushed (the drain guarantee), and the cache
    /// has been persisted.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures on the response stream and cache
    /// persistence failures at exit.
    pub fn serve<R, W>(
        self: &Arc<Server>,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<ServeSummary>
    where
        R: Read + Send + 'static,
        W: Write,
    {
        let (tx, rx) = mpsc::channel::<Incoming>();
        let max_line = self.opts.max_request_bytes;
        let reader_server = Arc::clone(self);
        // The reader thread is detached on the shutdown path (it may be
        // parked in a blocking read); it exits on EOF, on a send to a
        // closed channel, or on the stop flag.
        std::thread::spawn(move || {
            let mut reader = std::io::BufReader::new(reader);
            loop {
                if reader_server.stop.load(Ordering::Relaxed) {
                    break;
                }
                match read_bounded_line(&mut reader, max_line, &reader_server.stop) {
                    None => break,
                    Some(incoming) => {
                        if tx.send(incoming).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let jobs = self.opts.jobs.max(1);
        let max_batch = jobs.saturating_mul(8).max(1);
        let mut stopping = false;
        while !stopping {
            let first = match rx.recv() {
                Ok(first) => first,
                Err(_) => break, // EOF: reader gone, queue drained
            };
            let mut batch = vec![first];
            while batch.len() < max_batch {
                match rx.try_recv() {
                    Ok(next) => batch.push(next),
                    Err(_) => break,
                }
            }
            stopping = self.write_batch(jobs, &batch, &mut writer)?;
        }
        // Drain guarantee: everything the reader had already queued
        // before shutdown still gets an answer.
        if stopping {
            let rest: Vec<Incoming> = rx.try_iter().collect();
            if !rest.is_empty() {
                self.write_batch(jobs, &rest, &mut writer)?;
            }
        }
        self.save_cache()?;
        Ok(self.summary())
    }

    /// Processes one batch and writes the responses in request order.
    /// Returns whether a shutdown request was in the batch.
    fn write_batch<W: Write>(
        &self,
        jobs: usize,
        batch: &[Incoming],
        writer: &mut W,
    ) -> std::io::Result<bool> {
        let mut stopping = false;
        for reply in self.process_batch(jobs, batch).into_iter().flatten() {
            writer.write_all(reply.line.as_bytes())?;
            writer.write_all(b"\n")?;
            stopping |= reply.shutdown;
        }
        writer.flush()?;
        Ok(stopping)
    }

    /// Accept loop over a TCP listener; one dispatcher per connection,
    /// all sharing this server (and its cache). Returns once a
    /// `shutdown` request has been served on any connection and every
    /// connection has drained.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept configuration failures.
    pub fn serve_tcp(
        self: &Arc<Server>,
        listener: std::net::TcpListener,
    ) -> std::io::Result<ServeSummary> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| -> std::io::Result<()> {
            loop {
                if self.stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        stream.set_nonblocking(false)?;
                        // A finite read timeout lets idle connections
                        // notice a fleet-wide shutdown promptly.
                        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                        let server = Arc::clone(self);
                        let write_half = stream.try_clone()?;
                        scope.spawn(move || {
                            let _ = server.serve(stream, write_half);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => return Err(e),
                }
            }
        })?;
        self.save_cache()?;
        Ok(self.summary())
    }

    /// Accept loop over a Unix-domain listener (see [`Server::serve_tcp`]).
    ///
    /// # Errors
    ///
    /// Propagates bind/accept configuration failures.
    #[cfg(unix)]
    pub fn serve_unix(
        self: &Arc<Server>,
        listener: std::os::unix::net::UnixListener,
    ) -> std::io::Result<ServeSummary> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| -> std::io::Result<()> {
            loop {
                if self.stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        stream.set_nonblocking(false)?;
                        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                        let server = Arc::clone(self);
                        let write_half = stream.try_clone()?;
                        scope.spawn(move || {
                            let _ = server.serve(stream, write_half);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => return Err(e),
                }
            }
        })?;
        self.save_cache()?;
        Ok(self.summary())
    }
}

/// Effective (post-admission) per-request budgets.
struct AdmittedBudget {
    rounds: Option<u64>,
    pops: Option<u64>,
    wall_ms: Option<u64>,
    validate: Option<u32>,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `max_bytes + 1` of it: an over-long line is consumed to its newline
/// but surfaced as [`Incoming::Oversized`], so a hostile client cannot
/// balloon the daemon's memory. `None` at EOF (a final unterminated
/// fragment still counts as a line). On a read timeout (socket
/// transports set one so shutdown can propagate across idle
/// connections) the read is retried until `stop` is raised.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
    stop: &AtomicBool,
) -> Option<Incoming> {
    let mut buf: Vec<u8> = Vec::new();
    let mut seen: usize = 0;
    let mut overflowed = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                // EOF: emit whatever this line accumulated.
                return if seen == 0 {
                    None
                } else {
                    Some(finish_line(buf, seen, overflowed))
                };
            }
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return None;
                }
                continue;
            }
            Err(_) => return None,
        };
        let (line_part, ate, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => (&chunk[..nl], nl + 1, true),
            None => (chunk, chunk.len(), false),
        };
        seen += line_part.len();
        if seen > max_bytes {
            overflowed = true;
            buf.clear();
        } else {
            buf.extend_from_slice(line_part);
        }
        reader.consume(ate);
        if done {
            return Some(finish_line(buf, seen, overflowed));
        }
    }
}

fn finish_line(buf: Vec<u8>, seen: usize, overflowed: bool) -> Incoming {
    if overflowed {
        return Incoming::Oversized(seen);
    }
    match String::from_utf8(buf) {
        Ok(mut s) => {
            if s.ends_with('\r') {
                s.pop();
            }
            Incoming::Line(s)
        }
        Err(_) => Incoming::BadUtf8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";

    fn server() -> Arc<Server> {
        Arc::new(Server::new(ServeOptions::default()))
    }

    fn request(program: &str) -> String {
        crate::protocol::encode_request(Some("t"), program, Mode::Pde)
    }

    #[test]
    fn serves_an_optimize_request() {
        let s = server();
        let line = s.respond_line(&request(FIG1)).unwrap();
        let doc = pdce_trace::json::parse(&line).unwrap();
        assert_eq!(doc.get("status").unwrap().as_num(), Some(0.0));
        let optimized = doc.get("program").unwrap().as_str().unwrap();
        let reparsed = pdce_ir::parser::parse(optimized).unwrap();
        let n1 = reparsed.block_by_name("n1").unwrap();
        assert!(reparsed.block(n1).stmts.is_empty(), "assignment was sunk");
        assert_eq!(doc.get("eliminated").unwrap().as_num(), Some(1.0));
        assert_eq!(doc.get("rung").unwrap().as_str(), Some("none"));
    }

    #[test]
    fn warm_answers_are_byte_identical_and_hit_the_cache() {
        let s = server();
        let cold = s.respond_line(&request(FIG1)).unwrap();
        let warm = s.respond_line(&request(FIG1)).unwrap();
        assert_eq!(cold, warm);
        let summary = s.summary();
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 1);
        // A formatting-only change of the program still hits.
        let reformatted = FIG1.replace("  ", " ");
        let warm2 = s.respond_line(&request(&reformatted)).unwrap();
        assert_eq!(cold, warm2);
        assert_eq!(s.summary().cache_hits, 2);
    }

    #[test]
    fn no_cache_requests_bypass_the_cache() {
        let s = server();
        let line = request(FIG1).replace("\"mode\"", "\"no_cache\":true,\"mode\"");
        s.respond_line(&line).unwrap();
        s.respond_line(&line).unwrap();
        let summary = s.summary();
        assert_eq!(summary.cache_hits + summary.cache_misses, 0);
    }

    #[test]
    fn parse_errors_are_status_1_with_position() {
        let s = server();
        let line = s.respond_line(&request("prog { block x {")).unwrap();
        let doc = pdce_trace::json::parse(&line).unwrap();
        assert_eq!(doc.get("status").unwrap().as_num(), Some(1.0));
        let msg = doc.get("error").unwrap().as_str().unwrap();
        assert!(msg.starts_with("program:"), "positioned: {msg}");
    }

    #[test]
    fn serve_loop_answers_in_order_and_drains_at_eof() {
        let s = server();
        let input = format!(
            "{}\n{}\nnot json\n{}\n",
            request(FIG1),
            r#"{"op":"ping","id":"p"}"#,
            request("prog { block e { halt } }"),
        );
        let mut out = Vec::new();
        let summary = s
            .serve(std::io::Cursor::new(input.into_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "one response per request:\n{text}");
        assert!(lines[1].contains("\"pong\":true"));
        assert!(lines[2].contains("\"status\":1"));
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.ok, 3);
        assert_eq!(summary.bad_input, 1);
        assert!(!summary.shutdown);
    }

    #[test]
    fn shutdown_request_stops_the_loop_but_answers_everything_read() {
        let s = server();
        let input = format!(
            "{}\n{}\n{}\n",
            request(FIG1),
            r#"{"op":"shutdown","id":"bye"}"#,
            r#"{"op":"ping","id":"late"}"#,
        );
        let mut out = Vec::new();
        let summary = s
            .serve(std::io::Cursor::new(input.into_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(summary.shutdown);
        assert!(text.contains("\"shutdown\":true"));
        // The late ping was already queued when shutdown processed, so
        // the drain answers it (never silently drops read requests).
        assert!(text.contains("\"id\":\"late\""));
    }

    #[test]
    fn oversized_lines_are_rejected_with_bounded_memory() {
        let opts = ServeOptions {
            max_request_bytes: 256,
            ..ServeOptions::default()
        };
        let s = Arc::new(Server::new(opts));
        let big = format!(
            "{{\"program\":\"{}\"}}\n{}\n",
            "x".repeat(4096),
            r#"{"op":"ping"}"#
        );
        let mut out = Vec::new();
        s.serve(std::io::Cursor::new(big.into_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":1"));
        assert!(lines[0].contains("exceeds"));
        assert!(lines[1].contains("pong"), "daemon kept serving");
    }

    #[test]
    fn admission_clamps_request_budgets_to_server_caps() {
        assert_eq!(Server::admitted(Some(5), Some(3)), Some(3));
        assert_eq!(Server::admitted(Some(2), Some(3)), Some(2));
        assert_eq!(Server::admitted(None, Some(3)), Some(3));
        assert_eq!(Server::admitted(Some(9), None), Some(9));
        assert_eq!(Server::admitted(None, None), None);
    }

    #[test]
    fn bounded_reader_handles_split_and_unterminated_lines() {
        let stop = AtomicBool::new(false);
        let mut r =
            std::io::BufReader::with_capacity(4, std::io::Cursor::new(b"abcdef\ngh".to_vec()));
        let Some(Incoming::Line(a)) = read_bounded_line(&mut r, 64, &stop) else {
            panic!("line expected");
        };
        assert_eq!(a, "abcdef");
        let Some(Incoming::Line(b)) = read_bounded_line(&mut r, 64, &stop) else {
            panic!("unterminated tail expected");
        };
        assert_eq!(b, "gh");
        assert!(read_bounded_line(&mut r, 64, &stop).is_none());
    }
}
