//! The cache's crash-consistent write-ahead log.
//!
//! PR 8 persisted the result cache only on clean shutdown, so a
//! `kill -9` (or an OOM kill, or a power cut) threw away every answer
//! computed since startup. This module replaces that with an
//! append-only log sharing the cache's FNV-64 line framing: every
//! insert and every eviction is appended as one checksummed line, the
//! file is `fdatasync`ed every [`Wal::fsync_every`] appends, and the
//! log is compacted into a plain snapshot (atomic temp + rename) once
//! it outgrows the live set. Recovery replays the **longest valid
//! prefix**: the scan stops at the first line whose checksum, framing,
//! or JSON fails — a torn final write, a truncated tail, or a flipped
//! bit discards at most the unfsynced suffix and can never resurrect a
//! wrong answer, because every line earlier in the prefix was written
//! in full before it.
//!
//! ```text
//! pdce-serve-cache v2
//! <16-hex fnv64 of body>\t{"key":"…","program":…,…}     # insert
//! <16-hex fnv64 of body>\t{"evict":"…"}                  # evict
//! ```
//!
//! The writer assumes single ownership of the file (one daemon per
//! cache path); opening a log truncates any invalid tail in place so
//! subsequent appends extend the valid prefix.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use crate::cache::fnv64;

/// On-disk header for the WAL-backed format. The v1 header (snapshot
/// only) is deliberately not recognized: a v1 file reloads as empty
/// and is reclaimed as a v2 log.
pub const HEADER: &str = "pdce-serve-cache v2";

/// Registry handles for the log. Appends/compactions/recovery counts
/// are deterministic for a fixed request sequence; fsync cadence is a
/// pure function of the append count, so it is deterministic too.
mod wal_metrics {
    use pdce_metrics::{global, Counter, Stability};
    use std::sync::{Arc, LazyLock};

    fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
        global().counter(name, help, Stability::Deterministic, &[])
    }

    pub static APPENDS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_wal_appends_total",
            "Insert/evict records appended to the cache write-ahead log",
        )
    });
    pub static FSYNCS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_wal_fsyncs_total",
            "fdatasync calls issued by the cache write-ahead log",
        )
    });
    pub static COMPACTIONS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_wal_compactions_total",
            "Write-ahead log compactions into a snapshot",
        )
    });
    pub static RECOVERED: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_wal_recovered_total",
            "Cache entries recovered by replaying the write-ahead log",
        )
    });
    pub static DISCARDED: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_serve_wal_discarded_total",
            "Log lines discarded at recovery (invalid tail after the longest valid prefix)",
        )
    });
}

/// Frames `body` as one log line: checksum, tab, body, newline.
pub fn frame(body: &str) -> String {
    format!("{:016x}\t{body}\n", fnv64(body.as_bytes()))
}

/// Verifies one framed line, returning its body.
pub fn unframe(line: &str) -> Option<&str> {
    let (sum, body) = line.split_once('\t')?;
    if sum.len() != 16 || u64::from_str_radix(sum, 16).ok()? != fnv64(body.as_bytes()) {
        return None;
    }
    Some(body)
}

/// One line of the longest valid prefix found by [`scan`].
pub struct ScannedLine<'a> {
    /// The checksum-verified body (JSON, not yet decoded).
    pub body: &'a str,
    /// Byte offset of the end of this line (past its newline) — the
    /// truncation point if a *later* line turns out to be invalid.
    pub end: u64,
}

/// What a recovery scan of the log text found.
pub struct Scan<'a> {
    /// Checksum-valid lines, in append order.
    pub lines: Vec<ScannedLine<'a>>,
    /// Byte offset of the end of the header line.
    pub header_end: u64,
    /// Lines (including a torn final fragment) after the first invalid
    /// one; they are discarded by recovery.
    pub discarded: usize,
}

/// Scans `text` for the longest valid prefix of a v2 log. `None` when
/// the header is missing or torn (the cache starts fresh).
pub fn scan(text: &str) -> Option<Scan<'_>> {
    let header_end = (HEADER.len() + 1) as u64;
    if !text.starts_with(HEADER) || text.as_bytes().get(HEADER.len()) != Some(&b'\n') {
        return None;
    }
    let mut lines = Vec::new();
    let mut pos = header_end as usize;
    let mut discarded = 0;
    while pos < text.len() {
        let Some(nl) = text[pos..].find('\n') else {
            // Torn final write: no newline ever made it to disk.
            discarded += 1;
            break;
        };
        let line = &text[pos..pos + nl];
        match unframe(line) {
            Some(body) => {
                pos += nl + 1;
                lines.push(ScannedLine {
                    body,
                    end: pos as u64,
                });
            }
            None => {
                // First invalid line: everything from here on is
                // untrusted (later lines may be checksum-valid debris
                // of a previous generation).
                discarded += text[pos..].lines().count();
                break;
            }
        }
    }
    Some(Scan {
        lines,
        header_end,
        discarded,
    })
}

/// Reports `n` recovered entries and `discarded` dropped lines to the
/// metrics plane (called once per cache load).
pub fn note_recovery(recovered: usize, discarded: usize) {
    wal_metrics::RECOVERED.add(recovered as u64);
    wal_metrics::DISCARDED.add(discarded as u64);
}

/// The append handle: a file positioned at the end of its valid
/// prefix, plus the fsync ledger.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Bytes currently in the log (the compaction trigger's currency).
    pub bytes: u64,
    /// Appends since the last fsync.
    unsynced: u64,
    /// fdatasync after this many appends (min 1).
    fsync_every: u64,
    pub appends: u64,
    pub fsyncs: u64,
    pub compactions: u64,
}

impl Wal {
    /// Creates a fresh log at `path` (truncating whatever was there)
    /// with just the header, synced.
    ///
    /// # Errors
    /// Propagates file creation/write failures.
    pub fn create(path: &Path, fsync_every: u64) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(HEADER.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(Wal {
            file,
            bytes: (HEADER.len() + 1) as u64,
            unsynced: 0,
            fsync_every: fsync_every.max(1),
            appends: 0,
            fsyncs: 0,
            compactions: 0,
        })
    }

    /// Opens the log at `path` for appending after recovery, truncating
    /// the invalid tail: everything past `valid_bytes` is cut so new
    /// appends extend the valid prefix.
    ///
    /// # Errors
    /// Propagates open/truncate/seek failures.
    pub fn open_at(path: &Path, valid_bytes: u64, fsync_every: u64) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_bytes)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            bytes: valid_bytes,
            unsynced: 0,
            fsync_every: fsync_every.max(1),
            appends: 0,
            fsyncs: 0,
            compactions: 0,
        })
    }

    /// Appends one framed record and fsyncs if the interval is due.
    /// The line is written with a single `write_all`, so a crash leaves
    /// either the whole line or a torn tail — never an interleaving.
    ///
    /// # Errors
    /// Propagates write/sync failures (the cache degrades to in-memory
    /// operation on error).
    pub fn append(&mut self, body: &str) -> std::io::Result<()> {
        let line = frame(body);
        self.file.write_all(line.as_bytes())?;
        self.bytes += line.len() as u64;
        self.appends += 1;
        wal_metrics::APPENDS.inc();
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces the unfsynced tail to disk.
    ///
    /// # Errors
    /// Propagates the `fdatasync` failure.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.file.sync_data()?;
        self.unsynced = 0;
        self.fsyncs += 1;
        wal_metrics::FSYNCS.inc();
        Ok(())
    }

    /// Replaces the log with `snapshot` (header + one insert line per
    /// live entry) atomically: temp write, sync, rename, reopen for
    /// append. On success the handle continues on the new generation.
    ///
    /// # Errors
    /// Propagates temp-write/rename/reopen failures; the old log is
    /// intact if the rename never happened.
    pub fn compact_to(&mut self, path: &Path, snapshot: &str) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(snapshot.as_bytes())?;
            out.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.bytes = snapshot.len() as u64;
        self.unsynced = 0;
        self.compactions += 1;
        wal_metrics::COMPACTIONS.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_unframe_round_trip() {
        let line = frame(r#"{"evict":"00"}"#);
        assert!(line.ends_with('\n'));
        assert_eq!(unframe(line.trim_end()), Some(r#"{"evict":"00"}"#));
        assert_eq!(unframe("0123\tshort sum"), None);
        assert_eq!(unframe("no tab at all"), None);
        let mut bad = line.trim_end().to_string();
        bad.push('x');
        assert_eq!(unframe(&bad), None, "checksum catches the mutation");
    }

    #[test]
    fn scan_stops_at_the_first_invalid_line() {
        let mut text = format!("{HEADER}\n");
        text.push_str(&frame("one"));
        text.push_str(&frame("two"));
        let good_end = text.len() as u64;
        text.push_str("garbage line\n");
        text.push_str(&frame("three")); // valid but after the break
        let s = scan(&text).unwrap();
        assert_eq!(s.lines.len(), 2);
        assert_eq!(s.lines[1].end, good_end);
        assert_eq!(s.discarded, 2, "invalid line and the debris after it");
    }

    #[test]
    fn scan_discards_a_torn_final_write() {
        let mut text = format!("{HEADER}\n");
        text.push_str(&frame("one"));
        let good_end = text.len() as u64;
        let torn = frame("two");
        text.push_str(&torn[..torn.len() - 3]); // newline never landed
        let s = scan(&text).unwrap();
        assert_eq!(s.lines.len(), 1);
        assert_eq!(s.lines[0].end, good_end);
        assert_eq!(s.discarded, 1);
    }

    #[test]
    fn unrecognized_headers_mean_fresh() {
        assert!(scan("pdce-serve-cache v1\nwhatever").is_none());
        assert!(scan("").is_none());
        assert!(scan(HEADER).is_none(), "torn header line");
    }
}
