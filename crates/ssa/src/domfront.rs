//! Dominance frontiers (Cytron, Ferrante, Rosen, Wegman & Zadeck 1991).
//!
//! `DF(n)` is the set of blocks `m` such that `n` dominates a
//! predecessor of `m` but does not strictly dominate `m` — exactly the
//! places where a definition in `n` needs a φ-function. Computed with
//! the classic two-runner walk: for every join block, run each
//! predecessor up the dominator tree until the block's immediate
//! dominator, adding the join to every frontier on the way.

use pdce_ir::{CfgView, NodeId};

/// Dominator tree plus dominance frontiers.
#[derive(Debug, Clone)]
pub struct DomInfo {
    /// Immediate dominator of each node (`None` for unreachable nodes;
    /// the entry maps to itself).
    pub idom: Vec<Option<NodeId>>,
    /// Children lists of the dominator tree.
    pub children: Vec<Vec<NodeId>>,
    /// Dominance frontier of each node.
    pub frontier: Vec<Vec<NodeId>>,
}

impl DomInfo {
    /// Computes dominators and frontiers for the graph `view`.
    #[allow(clippy::needless_range_loop)] // i doubles as the NodeId index
    pub fn compute(view: &CfgView) -> DomInfo {
        let n = view.num_nodes();
        let idom = view.immediate_dominators();

        let mut children = vec![Vec::new(); n];
        for i in 0..n {
            let node = NodeId::from_index(i);
            if node == view.entry() {
                continue;
            }
            if let Some(d) = idom[i] {
                children[d.index()].push(node);
            }
        }

        let mut frontier = vec![Vec::new(); n];
        for i in 0..n {
            let b = NodeId::from_index(i);
            let preds = view.preds(b);
            if preds.len() < 2 {
                continue;
            }
            let Some(dom_b) = idom[i] else { continue };
            for &p in preds {
                if idom[p.index()].is_none() {
                    continue; // unreachable predecessor
                }
                let mut runner = p;
                while runner != dom_b {
                    if !frontier[runner.index()].contains(&b) {
                        frontier[runner.index()].push(b);
                    }
                    match idom[runner.index()] {
                        Some(d) if d != runner => runner = d,
                        _ => break,
                    }
                }
            }
        }
        DomInfo {
            idom,
            children,
            frontier,
        }
    }

    /// Iterated dominance frontier of a set of nodes — the φ-placement
    /// set of Cytron et al.
    pub fn iterated_frontier(&self, seeds: &[NodeId]) -> Vec<NodeId> {
        let mut result: Vec<NodeId> = Vec::new();
        let mut work: Vec<NodeId> = seeds.to_vec();
        let mut on_result = vec![false; self.frontier.len()];
        let mut queued = vec![false; self.frontier.len()];
        for &s in seeds {
            queued[s.index()] = true;
        }
        while let Some(x) = work.pop() {
            for &y in &self.frontier[x.index()] {
                if !on_result[y.index()] {
                    on_result[y.index()] = true;
                    result.push(y);
                    if !queued[y.index()] {
                        queued[y.index()] = true;
                        work.push(y);
                    }
                }
            }
        }
        result.sort_unstable();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn info(src: &str) -> (pdce_ir::Program, DomInfo) {
        let p = parse(src).unwrap();
        let view = CfgView::new(&p);
        let d = DomInfo::compute(&view);
        (p, d)
    }

    #[test]
    fn diamond_frontier_is_the_join() {
        let (p, d) = info(
            "prog {
               block s { nondet a b }
               block a { goto j }
               block b { goto j }
               block j { goto e }
               block e { halt }
             }",
        );
        let a = p.block_by_name("a").unwrap();
        let b = p.block_by_name("b").unwrap();
        let j = p.block_by_name("j").unwrap();
        assert_eq!(d.frontier[a.index()], vec![j]);
        assert_eq!(d.frontier[b.index()], vec![j]);
        assert!(d.frontier[p.entry().index()].is_empty());
        assert!(d.frontier[j.index()].is_empty());
        // Dominator-tree children of s include a, b, j.
        let mut kids = d.children[p.entry().index()].clone();
        kids.sort();
        assert_eq!(kids, vec![a, b, j]);
    }

    #[test]
    fn loop_header_is_its_own_frontier() {
        let (p, d) = info(
            "prog {
               block s { goto h }
               block h { nondet body x }
               block body { goto h }
               block x { goto e }
               block e { halt }
             }",
        );
        let h = p.block_by_name("h").unwrap();
        let body = p.block_by_name("body").unwrap();
        // A definition in the body (or header) meets itself at the header.
        assert_eq!(d.frontier[body.index()], vec![h]);
        assert_eq!(d.frontier[h.index()], vec![h]);
    }

    #[test]
    fn dominated_join_needs_no_phi() {
        // j1 dominates j2, so a φ at j1 covers j2: DF(j1) = ∅ and the
        // iterated frontier of a def in `a` stops at j1.
        let (p, d) = info(
            "prog {
               block s { nondet a b }
               block a { goto j1 }
               block b { goto j1 }
               block j1 { nondet c j2 }
               block c { goto j2 }
               block j2 { goto e }
               block e { halt }
             }",
        );
        let a = p.block_by_name("a").unwrap();
        let j1 = p.block_by_name("j1").unwrap();
        assert_eq!(d.iterated_frontier(&[a]), vec![j1]);
    }

    #[test]
    fn iterated_frontier_cascades() {
        // j2 has a predecessor that bypasses j1, so the φ at j1 is
        // itself a def whose frontier adds j2: the cascade.
        let (p, d) = info(
            "prog {
               block s { nondet a b d }
               block a { goto j1 }
               block b { goto j1 }
               block d { goto j2 }
               block j1 { goto j2 }
               block j2 { goto e }
               block e { halt }
             }",
        );
        let a = p.block_by_name("a").unwrap();
        let j1 = p.block_by_name("j1").unwrap();
        let j2 = p.block_by_name("j2").unwrap();
        assert_eq!(d.iterated_frontier(&[a]), vec![j1, j2]);
    }

    #[test]
    fn irreducible_graphs_have_frontiers_too() {
        let (p, d) = info(
            "prog {
               block s { nondet a b }
               block a { nondet b e }
               block b { goto a }
               block e { halt }
             }",
        );
        let a = p.block_by_name("a").unwrap();
        let b = p.block_by_name("b").unwrap();
        // Both loop blocks are join points dominated only by s.
        assert!(d.frontier[a.index()].contains(&b));
        assert!(d.frontier[b.index()].contains(&a));
    }
}
