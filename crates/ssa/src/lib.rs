//! Static single assignment form and sparse SSA-based dead code
//! elimination.
//!
//! Section 5.2 of the PDCE paper compares its iterative eliminations
//! with def-use-graph methods and notes that Cytron et al.'s sparse
//! SSA-based variant reaches `O(i·v)` worst-case time — "which coincides
//! with the complexity of our simple iterative algorithm". This crate
//! implements that comparison point from scratch:
//!
//! * [`domfront`] — dominator trees and dominance frontiers (the
//!   two-runner algorithm of Cytron/Ferrante/Rosen/Wegman/Zadeck '91),
//! * [`web`] — minimal-SSA φ placement via iterated dominance frontiers,
//!   stack-based renaming over the dominator tree, and the resulting
//!   *sparse def-use web* (no IR rewrite needed for DCE), plus
//!   [`web::ssa_dce`], whose removal power coincides with faint
//!   code elimination — verified against both `pdce-core`'s fce and the
//!   dense du-chain marking of `pdce-baselines` in the cross-crate
//!   tests,
//! * [`sccp`](mod@sccp) — sparse conditional constant propagation on top of the
//!   web (Wegman & Zadeck, the paper's reference \[30\]).

pub mod domfront;
pub mod passes;
pub mod sccp;
pub mod web;

pub use domfront::DomInfo;
pub use passes::{SccpPass, SsaDcePass};
pub use sccp::{sccp, sccp_cached, SccpSolution, SccpStats, Value};
pub use web::{ssa_dce, ssa_dce_cached, Consumer, DefSite, SsaWeb, UseRecord};
