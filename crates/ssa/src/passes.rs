//! [`Pass`] adapters for the SSA-based transformations, so SCCP and
//! sparse DCE compose in the workspace-wide pass pipeline.

use pdce_dfa::{AnalysisCache, Pass, PassOutcome, Preserves};
use pdce_ir::Program;

use crate::sccp::sccp_cached;
use crate::web::ssa_dce_cached;

/// Sparse conditional constant propagation. Folding a conditional branch
/// rewrites a terminator (and can strand blocks), so the pass preserves
/// the CFG shape only when no branch folded.
pub struct SccpPass;

impl Pass for SccpPass {
    fn name(&self) -> &'static str {
        "sccp"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let before = prog.revision();
        let stats = sccp_cached(prog, cache);
        if prog.revision() == before {
            return PassOutcome::unchanged();
        }
        let preserves = if stats.folded_branches == 0 {
            Preserves::Cfg
        } else {
            Preserves::Nothing
        };
        cache.retain(prog, preserves);
        PassOutcome {
            changed: true,
            rewritten: stats.folded_terms,
            preserves,
            ..PassOutcome::default()
        }
    }
}

/// Sparse SSA-based dead code elimination (Cytron et al. marking over
/// the def-use web); removal power coincides with faint code
/// elimination.
pub struct SsaDcePass;

impl Pass for SsaDcePass {
    fn name(&self) -> &'static str {
        "ssa-dce"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let before = prog.revision();
        let removed = ssa_dce_cached(prog, cache);
        if prog.revision() == before {
            return PassOutcome::unchanged();
        }
        cache.retain(prog, Preserves::Cfg);
        PassOutcome {
            changed: true,
            removed,
            preserves: Preserves::Cfg,
            ..PassOutcome::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    #[test]
    fn sccp_pass_folds_and_declares_nothing_on_branch_fold() {
        let mut p = parse(
            "prog {
               block s { x := 1; if x < 2 then a else b }
               block a { out(1); goto e }
               block b { out(2); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let out = SccpPass.run(&mut p, &mut AnalysisCache::new());
        assert!(out.changed);
        assert_eq!(out.preserves, Preserves::Nothing);
    }

    #[test]
    fn ssa_dce_pass_removes_faint_chain() {
        let mut p =
            parse("prog { block s { a := 1; b := a + 1; out(9); goto e } block e { halt } }")
                .unwrap();
        let out = SsaDcePass.run(&mut p, &mut AnalysisCache::new());
        assert_eq!(out.removed, 2);
        assert_eq!(out.preserves, Preserves::Cfg);
    }
}
