//! Sparse conditional constant propagation — Wegman & Zadeck, the
//! paper's reference \[30\].
//!
//! SCCP runs two coupled worklists over the SSA web: a *flow* worklist
//! of CFG edges (tracking which blocks and edges can execute) and an
//! *SSA* worklist of definitions whose lattice value changed. Because
//! branch conditions with known constant values enable only one
//! outgoing edge, constants propagate through joins that a
//! non-conditional analysis would have to treat pessimistically.
//!
//! Lattice: `Top` (unevaluated) ⊒ `Const(c)` ⊒ `Bottom` (varying).
//! Implicit entry definitions are `Bottom` — program variables are
//! inputs in our semantics, not known zeros.
//!
//! The transformation substitutes known-constant variables into
//! assignment right-hand sides, `out` arguments and branch conditions,
//! and rewrites conditions that folded to a constant into `goto`s
//! (making the dead arm unreachable; `pdce_ir::simplify_cfg` then
//! removes it).

use std::collections::HashMap;

use pdce_dfa::AnalysisCache;
use pdce_ir::interp::{eval_term, Env};
use pdce_ir::{CfgView, NodeId, Program, Stmt, TermData, TermId, Terminator, Var};

use crate::web::{Consumer, DefSite, SsaWeb, UseRecord};

/// The constant lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Not yet evaluated (optimistic initial state).
    Top,
    /// Known to be this constant on every execution.
    Const(i64),
    /// Varies between executions.
    Bottom,
}

impl Value {
    fn meet(self, other: Value) -> Value {
        match (self, other) {
            (Value::Top, x) | (x, Value::Top) => x,
            (Value::Const(a), Value::Const(b)) if a == b => Value::Const(a),
            _ => Value::Bottom,
        }
    }
}

/// Result of the SCCP analysis.
#[derive(Debug)]
pub struct SccpSolution {
    /// Lattice value of every SSA definition.
    pub values: Vec<Value>,
    /// Which blocks can execute.
    pub executable: Vec<bool>,
}

/// Statistics of the SCCP transformation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SccpStats {
    /// Definitions proven constant.
    pub constant_defs: usize,
    /// Terms rewritten (in assignments, outs, or conditions).
    pub folded_terms: u64,
    /// Conditional branches rewritten into unconditional jumps.
    pub folded_branches: u64,
    /// Blocks proven unreachable by the analysis.
    pub unreachable_blocks: usize,
}

/// Runs the SCCP analysis over a prebuilt SSA web.
pub fn analyze(prog: &Program, _view: &CfgView, web: &SsaWeb) -> SccpSolution {
    let ndefs = web.defs.len();
    let mut values = vec![Value::Top; ndefs];
    // Entry definitions model the program inputs: varying.
    for (i, d) in web.defs.iter().enumerate() {
        if matches!(d, DefSite::Entry { .. }) {
            values[i] = Value::Bottom;
        }
    }

    // users[d] = consumers reading definition d.
    let mut users: Vec<Vec<Consumer>> = vec![Vec::new(); ndefs];
    for u in &web.uses {
        users[u.def as usize].push(u.consumer);
    }
    // Per-assignment-def and per-cond var→def maps, from the journal.
    let mut rhs_env: HashMap<u32, Vec<(Var, u32)>> = HashMap::new();
    let mut cond_env: HashMap<usize, Vec<(Var, u32)>> = HashMap::new();
    for u in &web.uses {
        match u.consumer {
            Consumer::AssignRhs { def } => rhs_env.entry(def).or_default().push((u.var, u.def)),
            Consumer::Cond { block } => cond_env
                .entry(block.index())
                .or_default()
                .push((u.var, u.def)),
            _ => {}
        }
    }
    // φ arguments with their incoming edges.
    let mut phi_args: HashMap<u32, Vec<(NodeId, u32)>> = HashMap::new();
    for u in &web.uses {
        if let Consumer::PhiArg { phi, pred } = u.consumer {
            phi_args.entry(phi).or_default().push((pred, u.def));
        }
    }
    // φs per block for re-evaluation on edge additions.
    let mut phis_of_block: Vec<Vec<u32>> = vec![Vec::new(); prog.num_blocks()];
    let mut assigns_of_block: Vec<Vec<u32>> = vec![Vec::new(); prog.num_blocks()];
    for (i, d) in web.defs.iter().enumerate() {
        match *d {
            DefSite::Phi { block, .. } => phis_of_block[block.index()].push(i as u32),
            DefSite::Assign { block, .. } => assigns_of_block[block.index()].push(i as u32),
            DefSite::Entry { .. } => {}
        }
    }

    let mut executable = vec![false; prog.num_blocks()];
    let mut edge_executable: HashMap<(NodeId, NodeId), bool> = HashMap::new();
    let mut flow_work: Vec<(Option<NodeId>, NodeId)> = vec![(None, prog.entry())];
    let mut ssa_work: Vec<u32> = Vec::new();

    // Evaluates a term over a var→def environment.
    let eval_in = |prog: &Program, values: &[Value], t: TermId, env: &[(Var, u32)]| -> Value {
        let mut concrete = Env::zeroed(prog);
        let mut any_top = false;
        for &(var, def) in env {
            match values[def as usize] {
                Value::Bottom => return Value::Bottom,
                Value::Top => any_top = true,
                Value::Const(c) => concrete.set(var, c),
            }
        }
        if any_top {
            return Value::Top;
        }
        Value::Const(eval_term(prog, &concrete, t))
    };

    // Lowers a def's value; queues users on change.
    macro_rules! set_value {
        ($values:ident, $ssa_work:ident, $d:expr, $v:expr) => {{
            let d = $d as usize;
            let new = $values[d].meet($v);
            if new != $values[d] {
                $values[d] = new;
                $ssa_work.push($d);
            }
        }};
    }

    let eval_phi = |values: &[Value],
                    edge_executable: &HashMap<(NodeId, NodeId), bool>,
                    phi: u32,
                    block: NodeId,
                    phi_args: &HashMap<u32, Vec<(NodeId, u32)>>|
     -> Value {
        let mut acc = Value::Top;
        if let Some(args) = phi_args.get(&phi) {
            for &(pred, def) in args {
                if edge_executable
                    .get(&(pred, block))
                    .copied()
                    .unwrap_or(false)
                {
                    acc = acc.meet(values[def as usize]);
                }
            }
        }
        acc
    };

    let eval_assign = |prog: &Program, values: &[Value], def: u32, rhs: TermId| -> Value {
        let env = rhs_env.get(&def).map(Vec::as_slice).unwrap_or(&[]);
        eval_in(prog, values, rhs, env)
    };

    // Adds the outgoing flow of a block given current knowledge.
    let branch_targets = |prog: &Program, values: &[Value], n: NodeId| -> Vec<NodeId> {
        match &prog.block(n).term {
            Terminator::Goto(m) => vec![*m],
            Terminator::Nondet(ms) => ms.clone(),
            Terminator::Halt => vec![],
            Terminator::Cond {
                cond,
                then_to,
                else_to,
            } => {
                let env = cond_env.get(&n.index()).map(Vec::as_slice).unwrap_or(&[]);
                match eval_in(prog, values, *cond, env) {
                    Value::Const(c) => vec![if c != 0 { *then_to } else { *else_to }],
                    Value::Top => vec![], // not yet known; revisited later
                    Value::Bottom => vec![*then_to, *else_to],
                }
            }
        }
    };

    while !flow_work.is_empty() || !ssa_work.is_empty() {
        while let Some((from, to)) = flow_work.pop() {
            if let Some(f) = from {
                if edge_executable.insert((f, to), true) == Some(true) {
                    continue;
                }
            }
            let first_visit = !executable[to.index()];
            executable[to.index()] = true;
            // (Re-)evaluate φs of `to`.
            for &phi in &phis_of_block[to.index()] {
                let DefSite::Phi { block, .. } = web.defs[phi as usize] else {
                    unreachable!()
                };
                let v = eval_phi(&values, &edge_executable, phi, block, &phi_args);
                set_value!(values, ssa_work, phi, v);
            }
            if first_visit {
                for &a in &assigns_of_block[to.index()] {
                    let DefSite::Assign { block, stmt, .. } = web.defs[a as usize] else {
                        unreachable!()
                    };
                    let Stmt::Assign { rhs, .. } = prog.block(block).stmts[stmt] else {
                        unreachable!()
                    };
                    let v = eval_assign(prog, &values, a, rhs);
                    set_value!(values, ssa_work, a, v);
                }
                for m in branch_targets(prog, &values, to) {
                    flow_work.push((Some(to), m));
                }
            }
        }
        while let Some(d) = ssa_work.pop() {
            for &consumer in &users[d as usize] {
                match consumer {
                    Consumer::AssignRhs { def } => {
                        let DefSite::Assign { block, stmt, .. } = web.defs[def as usize] else {
                            unreachable!()
                        };
                        if !executable[block.index()] {
                            continue;
                        }
                        let Stmt::Assign { rhs, .. } = prog.block(block).stmts[stmt] else {
                            unreachable!()
                        };
                        let v = eval_assign(prog, &values, def, rhs);
                        set_value!(values, ssa_work, def, v);
                    }
                    Consumer::PhiArg { phi, .. } => {
                        let DefSite::Phi { block, .. } = web.defs[phi as usize] else {
                            unreachable!()
                        };
                        if !executable[block.index()] {
                            continue;
                        }
                        let v = eval_phi(&values, &edge_executable, phi, block, &phi_args);
                        set_value!(values, ssa_work, phi, v);
                    }
                    Consumer::Cond { block } => {
                        if !executable[block.index()] {
                            continue;
                        }
                        for m in branch_targets(prog, &values, block) {
                            flow_work.push((Some(block), m));
                        }
                    }
                    Consumer::Out { .. } => {}
                }
            }
        }
    }

    SccpSolution { values, executable }
}

/// Runs SCCP and applies the transformation. Returns statistics.
///
/// # Example
///
/// ```
/// use pdce_ir::parser::parse;
/// use pdce_ssa::sccp;
///
/// // The branch on a known constant folds; y stays constant through
/// // the join because the dead arm never executes.
/// let mut prog = parse(
///     "prog { block s { x := 1; if x == 1 then t else f }
///             block t { y := 1; goto j } block f { y := 2; goto j }
///             block j { out(y); goto e } block e { halt } }",
/// )?;
/// let stats = sccp(&mut prog);
/// assert_eq!(stats.folded_branches, 1);
/// assert_eq!(stats.unreachable_blocks, 1);
/// # Ok::<(), pdce_ir::ParseError>(())
/// ```
pub fn sccp(prog: &mut Program) -> SccpStats {
    sccp_cached(prog, &mut AnalysisCache::new())
}

/// Like [`sccp`], but reads the CFG from `cache`'s memoized [`CfgView`]
/// instead of rebuilding the adjacency per call.
pub fn sccp_cached(prog: &mut Program, cache: &mut AnalysisCache) -> SccpStats {
    let view = cache.cfg(prog);
    let web = SsaWeb::build(prog, &view);
    let sol = analyze(prog, &view, &web);

    let mut stats = SccpStats {
        constant_defs: sol
            .values
            .iter()
            .zip(&web.defs)
            .filter(|(v, d)| matches!(v, Value::Const(_)) && matches!(d, DefSite::Assign { .. }))
            .count(),
        unreachable_blocks: sol.executable.iter().filter(|e| !**e).count(),
        ..SccpStats::default()
    };

    // Substitution maps per consumer, from the journal: only uses whose
    // supplying def is Const participate.
    let mut assign_subst: HashMap<(usize, usize), HashMap<Var, i64>> = HashMap::new();
    let mut out_subst: HashMap<(usize, usize), HashMap<Var, i64>> = HashMap::new();
    let mut cond_subst: HashMap<usize, HashMap<Var, i64>> = HashMap::new();
    for &UseRecord { def, consumer, var } in &web.uses {
        let Value::Const(c) = sol.values[def as usize] else {
            continue;
        };
        match consumer {
            Consumer::AssignRhs { def: user } => {
                let DefSite::Assign { block, stmt, .. } = web.defs[user as usize] else {
                    unreachable!()
                };
                assign_subst
                    .entry((block.index(), stmt))
                    .or_default()
                    .insert(var, c);
            }
            Consumer::Out { block, stmt } => {
                out_subst
                    .entry((block.index(), stmt))
                    .or_default()
                    .insert(var, c);
            }
            Consumer::Cond { block } => {
                cond_subst.entry(block.index()).or_default().insert(var, c);
            }
            Consumer::PhiArg { .. } => {}
        }
    }

    for n in prog.node_ids().collect::<Vec<_>>() {
        if !sol.executable[n.index()] {
            continue;
        }
        let block_len = prog.block(n).stmts.len();
        for k in 0..block_len {
            let stmt = prog.block(n).stmts[k];
            match stmt {
                Stmt::Assign { lhs, rhs } => {
                    if let Some(map) = assign_subst.get(&(n.index(), k)) {
                        let (t2, c) = substitute_consts(prog, rhs, map);
                        if c > 0 {
                            stats.folded_terms += c;
                            prog.stmts_mut(n)[k] = Stmt::Assign { lhs, rhs: t2 };
                        }
                    }
                }
                Stmt::Out(t) => {
                    if let Some(map) = out_subst.get(&(n.index(), k)) {
                        let (t2, c) = substitute_consts(prog, t, map);
                        if c > 0 {
                            stats.folded_terms += c;
                            prog.stmts_mut(n)[k] = Stmt::Out(t2);
                        }
                    }
                }
                Stmt::Skip => {}
            }
        }
        // Fold the condition; rewrite to goto when fully constant.
        if let Terminator::Cond {
            cond,
            then_to,
            else_to,
        } = prog.block(n).term
        {
            let map = cond_subst.get(&n.index()).cloned().unwrap_or_default();
            let (c2, folded) = substitute_consts(prog, cond, &map);
            if folded > 0 {
                stats.folded_terms += folded;
            }
            if let TermData::Const(c) = prog.terms().data(c2) {
                stats.folded_branches += 1;
                prog.block_mut(n).term = Terminator::Goto(if c != 0 { then_to } else { else_to });
            } else if folded > 0 {
                if let Terminator::Cond { cond, .. } = &mut prog.block_mut(n).term {
                    *cond = c2;
                }
            }
        }
    }
    stats
}

/// Substitutes constants for variables and folds constant subterms.
/// Returns the rewritten term and the number of substitutions.
fn substitute_consts(prog: &mut Program, t: TermId, map: &HashMap<Var, i64>) -> (TermId, u64) {
    match prog.terms().data(t) {
        TermData::Const(_) => (t, 0),
        TermData::Var(v) => match map.get(&v) {
            Some(&c) => (prog.terms_mut().constant(c), 1),
            None => (t, 0),
        },
        TermData::Unary(op, a) => {
            let (a2, c) = substitute_consts(prog, a, map);
            if c == 0 {
                return (t, 0);
            }
            let t2 = fold1(prog, op, a2);
            (t2, c)
        }
        TermData::Binary(op, a, b) => {
            let (a2, ca) = substitute_consts(prog, a, map);
            let (b2, cb) = substitute_consts(prog, b, map);
            if ca + cb == 0 {
                return (t, 0);
            }
            let t2 = fold2(prog, op, a2, b2);
            (t2, ca + cb)
        }
    }
}

fn fold1(prog: &mut Program, op: pdce_ir::UnOp, a: TermId) -> TermId {
    if let TermData::Const(_) = prog.terms().data(a) {
        let t = prog.terms_mut().unary(op, a);
        let v = eval_term(prog, &Env::zeroed(prog), t);
        return prog.terms_mut().constant(v);
    }
    prog.terms_mut().unary(op, a)
}

fn fold2(prog: &mut Program, op: pdce_ir::BinOp, a: TermId, b: TermId) -> TermId {
    if let (TermData::Const(_), TermData::Const(_)) = (prog.terms().data(a), prog.terms().data(b)) {
        let t = prog.terms_mut().binary(op, a, b);
        let v = eval_term(prog, &Env::zeroed(prog), t);
        return prog.terms_mut().constant(v);
    }
    prog.terms_mut().binary(op, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{diff, structural_eq};

    fn check(src: &str, expected: &str) {
        let mut p = parse(src).unwrap();
        sccp(&mut p);
        // Branch folding can leave unreachable arms (simplify_cfg's job),
        // so the expectation is parsed without reachability validation.
        let want = pdce_ir::parser::parse_unvalidated(expected).unwrap();
        assert!(
            structural_eq(&p, &want),
            "sccp mismatch:\n{}",
            diff(&p, &want)
        );
    }

    #[test]
    fn straight_line_folding() {
        check(
            "prog { block s { x := 2; y := x + 3; out(y * x); goto e } block e { halt } }",
            "prog { block s { x := 2; y := 5; out(10); goto e } block e { halt } }",
        );
    }

    #[test]
    fn inputs_are_not_constants() {
        check(
            "prog { block s { y := a + 1; out(y); goto e } block e { halt } }",
            "prog { block s { y := a + 1; out(y); goto e } block e { halt } }",
        );
    }

    /// The *conditional* part: with x := 1 the branch folds, the dead
    /// arm never executes, and y stays constant through the join — a
    /// plain constant propagation would give up at the φ.
    #[test]
    fn constant_branch_keeps_join_constant() {
        check(
            "prog {
               block s { x := 1; if x == 1 then t else f }
               block t { y := 1; goto j }
               block f { y := 2; goto j }
               block j { out(y); goto e }
               block e { halt }
             }",
            "prog {
               block s { x := 1; goto t }
               block t { y := 1; goto j }
               block f { y := 2; goto j }
               block j { out(1); goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn diverging_join_is_bottom() {
        check(
            "prog {
               block s { nondet t f }
               block t { y := 1; goto j }
               block f { y := 2; goto j }
               block j { out(y); goto e }
               block e { halt }
             }",
            "prog {
               block s { nondet t f }
               block t { y := 1; goto j }
               block f { y := 2; goto j }
               block j { out(y); goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn constant_survives_loop_without_redefinition() {
        check(
            "prog {
               block s { c := 7; goto h }
               block h { out(c); nondet h2 d }
               block h2 { goto h }
               block d { goto e }
               block e { halt }
             }",
            "prog {
               block s { c := 7; goto h }
               block h { out(7); nondet h2 d }
               block h2 { goto h }
               block d { goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn loop_carried_increment_is_bottom() {
        check(
            "prog {
               block s { i := 0; goto h }
               block h { out(i); i := i + 1; nondet h2 d }
               block h2 { goto h }
               block d { goto e }
               block e { halt }
             }",
            "prog {
               block s { i := 0; goto h }
               block h { out(i); i := i + 1; nondet h2 d }
               block h2 { goto h }
               block d { goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn partial_substitution_into_mixed_terms() {
        check(
            "prog { block s { k := 4; out(a + k * 2); goto e } block e { halt } }",
            "prog { block s { k := 4; out(a + 8); goto e } block e { halt } }",
        );
    }

    #[test]
    fn same_constant_on_both_arms_survives_the_join() {
        check(
            "prog {
               block s { nondet t f }
               block t { y := 3; goto j }
               block f { y := 3; goto j }
               block j { out(y + 1); goto e }
               block e { halt }
             }",
            "prog {
               block s { nondet t f }
               block t { y := 3; goto j }
               block f { y := 3; goto j }
               block j { out(4); goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn semantics_preserved_with_simplify() {
        use pdce_ir::interp::{run_with, ExecLimits};
        let src = "prog {
            block s { x := 5; if x < 3 then t else f }
            block t { out(a); goto j }
            block f { out(a + x); goto j }
            block j { out(9); goto e }
            block e { halt }
        }";
        let orig = parse(src).unwrap();
        let mut p = parse(src).unwrap();
        let stats = sccp(&mut p);
        assert_eq!(stats.folded_branches, 1);
        assert_eq!(stats.unreachable_blocks, 1); // block t
        pdce_ir::simplify_cfg(&mut p);
        assert!(p.block_by_name("t").is_none(), "dead arm removed");
        for a in [0i64, -4, 11] {
            let t0 = run_with(&orig, &[("a", a)], vec![], ExecLimits::default());
            let t1 = run_with(&p, &[("a", a)], vec![], ExecLimits::default());
            assert_eq!(t0.outputs, t1.outputs, "a={a}");
        }
    }
}
