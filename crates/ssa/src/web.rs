//! SSA construction as a sparse def-use web (Cytron et al. 1991).
//!
//! We do not rewrite the program into an SSA IR; for dead code
//! elimination only the *def-use structure* of the SSA form matters:
//! every definition site (real assignment, φ-function, or the implicit
//! entry definition), the suppliers of each definition, and which
//! definitions feed relevant statements. The web has `O(i)` φs and
//! edges on real programs — the sparsity the paper's Section 5.2 credits
//! with the `O(i·v)` bound, versus the dense du-graph's `O(i²·v)`.

use pdce_dfa::{AnalysisCache, BitVec};
use pdce_ir::{CfgView, NodeId, Program, Stmt, Var};

use crate::domfront::DomInfo;

/// A definition site in the SSA web.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The implicit definition of a variable at the entry (initial `0`).
    Entry {
        /// Defined variable.
        var: Var,
    },
    /// A φ-function placed at a join block.
    Phi {
        /// Block carrying the φ.
        block: NodeId,
        /// Variable merged by the φ.
        var: Var,
    },
    /// A real assignment `stmts[stmt]` of `block`.
    Assign {
        /// Block of the assignment.
        block: NodeId,
        /// Statement index.
        stmt: usize,
        /// Defined variable.
        var: Var,
    },
}

/// Who consumes an SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consumer {
    /// The right-hand side of the assignment that is definition `def`.
    AssignRhs {
        /// Consuming definition id.
        def: u32,
    },
    /// An `out` statement.
    Out {
        /// Block of the statement.
        block: NodeId,
        /// Statement index.
        stmt: usize,
    },
    /// A branch condition.
    Cond {
        /// Block whose terminator reads the value.
        block: NodeId,
    },
    /// A φ argument arriving over the edge from `pred`.
    PhiArg {
        /// The φ definition id.
        phi: u32,
        /// Predecessor block the argument flows in from.
        pred: NodeId,
    },
}

/// One recorded use: `def` is read by `consumer` through variable `var`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseRecord {
    /// The supplying definition.
    pub def: u32,
    /// The consumer.
    pub consumer: Consumer,
    /// The source variable the consumer reads.
    pub var: Var,
}

/// The sparse SSA def-use web of a program.
#[derive(Debug)]
pub struct SsaWeb {
    /// All definition sites.
    pub defs: Vec<DefSite>,
    /// For each definition, the definitions it reads (φ arguments or the
    /// reaching definitions of right-hand-side variables).
    pub suppliers: Vec<Vec<u32>>,
    /// Definitions read by a relevant statement (`out` / branch
    /// condition).
    pub relevant: BitVec,
    /// Every use, with its consumer — the journal sparse analyses like
    /// SCCP walk.
    pub uses: Vec<UseRecord>,
    /// Number of φ-functions placed.
    pub num_phis: usize,
    /// Total sparse use edges (supplier entries + relevant uses).
    pub edges: u64,
}

impl SsaWeb {
    /// Builds the web for `prog`.
    pub fn build(prog: &Program, view: &CfgView) -> SsaWeb {
        Builder::new(prog, view).build()
    }

    /// Optimistic mark phase: which definitions (transitively) feed a
    /// relevant statement.
    pub fn mark(&self) -> BitVec {
        let mut marked = self.relevant.clone();
        let mut work: Vec<usize> = marked.iter_ones().collect();
        while let Some(d) = work.pop() {
            for &s in &self.suppliers[d] {
                let s = s as usize;
                if !marked.get(s) {
                    marked.set(s, true);
                    work.push(s);
                }
            }
        }
        marked
    }
}

struct Builder<'a> {
    prog: &'a Program,
    view: &'a CfgView,
    dom: DomInfo,
    defs: Vec<DefSite>,
    suppliers: Vec<Vec<u32>>,
    relevant_uses: Vec<u32>,
    uses: Vec<UseRecord>,
    edges: u64,
    /// φ def id per (block, var), dense map.
    phi_at: Vec<Option<u32>>,
    /// Current reaching definition per variable (renaming stacks).
    stacks: Vec<Vec<u32>>,
    num_vars: usize,
}

impl<'a> Builder<'a> {
    fn new(prog: &'a Program, view: &'a CfgView) -> Builder<'a> {
        let dom = DomInfo::compute(view);
        Builder {
            prog,
            view,
            dom,
            defs: Vec::new(),
            suppliers: Vec::new(),
            relevant_uses: Vec::new(),
            uses: Vec::new(),
            edges: 0,
            phi_at: vec![None; prog.num_blocks() * prog.num_vars()],
            stacks: vec![Vec::new(); prog.num_vars()],
            num_vars: prog.num_vars(),
        }
    }

    fn new_def(&mut self, site: DefSite) -> u32 {
        let id = u32::try_from(self.defs.len()).expect("def count overflow");
        self.defs.push(site);
        self.suppliers.push(Vec::new());
        id
    }

    #[allow(clippy::needless_range_loop)] // v doubles as the variable index
    fn build(mut self) -> SsaWeb {
        // Implicit entry definitions, one per variable; they seed the
        // renaming stacks so every use has a reaching definition.
        for v in 0..self.num_vars {
            let var = Var::from_index(v);
            let id = self.new_def(DefSite::Entry { var });
            self.stacks[v].push(id);
        }

        // φ placement: iterated dominance frontier of each variable's
        // definition blocks (minimal SSA).
        let mut def_blocks: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_vars];
        for n in self.prog.node_ids() {
            for stmt in &self.prog.block(n).stmts {
                if let Some(m) = stmt.modified() {
                    if !def_blocks[m.index()].contains(&n) {
                        def_blocks[m.index()].push(n);
                    }
                }
            }
        }
        let mut num_phis = 0;
        for v in 0..self.num_vars {
            let var = Var::from_index(v);
            let mut seeds = def_blocks[v].clone();
            seeds.push(self.prog.entry()); // the implicit def
            for block in self.dom.iterated_frontier(&seeds) {
                let id = self.new_def(DefSite::Phi { block, var });
                self.phi_at[block.index() * self.num_vars + v] = Some(id);
                num_phis += 1;
            }
        }

        // Renaming: DFS over the dominator tree.
        self.rename(self.prog.entry());

        let mut relevant = BitVec::zeros(self.defs.len());
        for &d in &self.relevant_uses {
            relevant.set(d as usize, true);
        }
        let edges = self.edges;
        SsaWeb {
            defs: self.defs,
            suppliers: self.suppliers,
            relevant,
            uses: self.uses,
            num_phis,
            edges,
        }
    }

    fn current(&self, v: Var) -> u32 {
        *self.stacks[v.index()]
            .last()
            .expect("entry def always on the stack")
    }

    fn rename(&mut self, block: NodeId) {
        let mut pushed: Vec<Var> = Vec::new();

        // φ definitions first.
        for v in 0..self.num_vars {
            if let Some(id) = self.phi_at[block.index() * self.num_vars + v] {
                let var = Var::from_index(v);
                self.stacks[v].push(id);
                pushed.push(var);
            }
        }

        // Statements.
        for (k, stmt) in self.prog.block(block).stmts.iter().enumerate() {
            match *stmt {
                Stmt::Skip => {}
                Stmt::Out(t) => {
                    for &v in self.prog.terms().vars_of(t) {
                        let d = self.current(v);
                        self.relevant_uses.push(d);
                        self.uses.push(UseRecord {
                            def: d,
                            consumer: Consumer::Out { block, stmt: k },
                            var: v,
                        });
                        self.edges += 1;
                    }
                }
                Stmt::Assign { lhs, rhs } => {
                    let id = self.new_def(DefSite::Assign {
                        block,
                        stmt: k,
                        var: lhs,
                    });
                    for &v in self.prog.terms().vars_of(rhs) {
                        let d = self.current(v);
                        self.suppliers[id as usize].push(d);
                        self.uses.push(UseRecord {
                            def: d,
                            consumer: Consumer::AssignRhs { def: id },
                            var: v,
                        });
                        self.edges += 1;
                    }
                    self.stacks[lhs.index()].push(id);
                    pushed.push(lhs);
                }
            }
        }

        // Branch conditions are relevant uses.
        if let Some(c) = self.prog.block(block).term.used_term() {
            for &v in self.prog.terms().vars_of(c) {
                let d = self.current(v);
                self.relevant_uses.push(d);
                self.uses.push(UseRecord {
                    def: d,
                    consumer: Consumer::Cond { block },
                    var: v,
                });
                self.edges += 1;
            }
        }

        // Fill successor φ arguments from the current stacks.
        for &succ in self.view.succs(block) {
            for v in 0..self.num_vars {
                if let Some(phi) = self.phi_at[succ.index() * self.num_vars + v] {
                    let var = Var::from_index(v);
                    let d = self.current(var);
                    self.suppliers[phi as usize].push(d);
                    self.uses.push(UseRecord {
                        def: d,
                        consumer: Consumer::PhiArg { phi, pred: block },
                        var,
                    });
                    self.edges += 1;
                }
            }
        }

        // Recurse over dominator-tree children.
        for child in self.dom.children[block.index()].clone() {
            self.rename(child);
        }

        // Pop this block's definitions.
        for var in pushed.into_iter().rev() {
            self.stacks[var.index()].pop();
        }
    }
}

/// Sparse SSA-based dead code elimination: builds the web, marks
/// definitions transitively feeding relevant statements, deletes every
/// unmarked real assignment. Returns the number of removals.
///
/// Removal power coincides with faint code elimination (the optimistic
/// marking detects every faint assignment, §5.2), which the cross-crate
/// tests verify.
///
/// # Example
///
/// ```
/// use pdce_ir::parser::parse;
/// use pdce_ssa::ssa_dce;
///
/// let mut prog = parse(
///     "prog { block s { a := 1; b := a + 1; out(7); goto e }
///             block e { halt } }",
/// )?;
/// assert_eq!(ssa_dce(&mut prog), 2); // the whole faint chain
/// # Ok::<(), pdce_ir::ParseError>(())
/// ```
pub fn ssa_dce(prog: &mut Program) -> u64 {
    ssa_dce_cached(prog, &mut AnalysisCache::new())
}

/// Like [`ssa_dce`], but reads the CFG from `cache`'s memoized
/// [`CfgView`] instead of rebuilding the adjacency per call.
pub fn ssa_dce_cached(prog: &mut Program, cache: &mut AnalysisCache) -> u64 {
    let view = cache.cfg(prog);
    let web = SsaWeb::build(prog, &view);
    let marked = web.mark();
    let mut doomed: Vec<Vec<usize>> = vec![Vec::new(); prog.num_blocks()];
    for (i, def) in web.defs.iter().enumerate() {
        if let DefSite::Assign { block, stmt, .. } = *def {
            if !marked.get(i) {
                doomed[block.index()].push(stmt);
            }
        }
    }
    let mut removed = 0u64;
    for n in prog.node_ids().collect::<Vec<_>>() {
        if doomed[n.index()].is_empty() {
            continue;
        }
        doomed[n.index()].sort_unstable();
        let dl = &doomed[n.index()];
        let keep: Vec<Stmt> = prog
            .block(n)
            .stmts
            .iter()
            .enumerate()
            .filter_map(|(k, s)| {
                if dl.binary_search(&k).is_ok() {
                    removed += 1;
                    None
                } else {
                    Some(*s)
                }
            })
            .collect();
        *prog.stmts_mut(n) = keep;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn web_of(src: &str) -> (pdce_ir::Program, SsaWeb) {
        let p = parse(src).unwrap();
        let view = CfgView::new(&p);
        let w = SsaWeb::build(&p, &view);
        (p, w)
    }

    #[test]
    fn straight_line_has_no_phis() {
        let (_p, w) =
            web_of("prog { block s { x := 1; y := x + 1; out(y); goto e } block e { halt } }");
        assert_eq!(w.num_phis, 0);
        // defs: 3 entry-implicit (x, y... plus any rhs vars) + 2 assigns.
        let assigns = w
            .defs
            .iter()
            .filter(|d| matches!(d, DefSite::Assign { .. }))
            .count();
        assert_eq!(assigns, 2);
        let marked = w.mark();
        // Both assignments feed out(y): marked.
        for (i, d) in w.defs.iter().enumerate() {
            if matches!(d, DefSite::Assign { .. }) {
                assert!(marked.get(i));
            }
        }
    }

    #[test]
    fn join_gets_one_phi_with_two_args() {
        let (_p, w) = web_of(
            "prog {
               block s { nondet a b }
               block a { x := 1; goto j }
               block b { x := 2; goto j }
               block j { out(x); goto e }
               block e { halt }
             }",
        );
        assert_eq!(w.num_phis, 1);
        let phi = w
            .defs
            .iter()
            .position(|d| matches!(d, DefSite::Phi { .. }))
            .unwrap();
        assert_eq!(w.suppliers[phi].len(), 2);
        let marked = w.mark();
        assert!(marked.get(phi));
    }

    #[test]
    fn loop_phi_cycles_stay_unmarked_without_relevant_use() {
        // Figure 9: x := x + 1 in a loop, unobserved. The φ at the
        // header and the increment form a cycle with no relevant use.
        let mut p = parse(
            "prog {
               block s { goto l }
               block l { x := x + 1; nondet l d }
               block d { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(ssa_dce(&mut p), 1);
        assert_eq!(p.num_assignments(), 0);
    }

    #[test]
    fn observed_loop_variable_is_kept() {
        let mut p = parse(
            "prog {
               block s { goto l }
               block l { x := x + 1; nondet l d }
               block d { out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(ssa_dce(&mut p), 0);
    }

    #[test]
    fn sparse_web_is_linear_where_dense_graph_is_quadratic() {
        // k defs on k arms, k uses after the join: the φ merges the
        // arms, so the sparse web has O(k) edges.
        for k in [8usize, 16, 32] {
            let p = build_many_defs(k);
            let view = CfgView::new(&p);
            let w = SsaWeb::build(&p, &view);
            assert!(
                w.edges <= 4 * k as u64 + 8,
                "k={k}: sparse web should be linear, got {} edges",
                w.edges
            );
        }
    }

    fn build_many_defs(k: usize) -> pdce_ir::Program {
        use std::fmt::Write as _;
        let mut src = String::from("prog { block s { nondet");
        for i in 0..k {
            let _ = write!(src, " d{i}");
        }
        src.push_str(" } ");
        for i in 0..k {
            let _ = write!(src, "block d{i} {{ x := {i}; goto u }} ");
        }
        src.push_str("block u { ");
        for _ in 0..k {
            src.push_str("out(x); ");
        }
        src.push_str("goto e } block e { halt } }");
        parse(&src).unwrap()
    }

    #[test]
    fn implicit_entry_defs_cover_uninitialized_uses() {
        let (_p, w) = web_of("prog { block s { out(q); goto e } block e { halt } }");
        // The relevant use resolves to the entry def of q.
        let entry_q = w
            .defs
            .iter()
            .position(|d| matches!(d, DefSite::Entry { .. }))
            .unwrap();
        assert!(w.relevant.get(entry_q));
    }

    #[test]
    fn faint_chain_removed_entirely() {
        let mut p = parse(
            "prog { block s { a := 1; b := a + 1; c := b + a; out(0); goto e } block e { halt } }",
        )
        .unwrap();
        assert_eq!(ssa_dce(&mut p), 3);
    }
}
