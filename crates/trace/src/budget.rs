//! Work budgets for the optimizer: bounded rounds, worklist pops, and
//! wall-clock time.
//!
//! A budget is installed for the dynamic extent of one optimization
//! attempt ([`install`], thread-local like the tracer). The pde/pfe
//! round loop charges rounds, and the dfa solver loops charge worklist
//! pops; either check can report exhaustion. A partially-converged
//! fixpoint is *unsound to use*, so pop exhaustion aborts the solve by
//! panicking with a typed [`BudgetExhausted`] payload — the sandboxed
//! driver catches it and degrades along the documented ladder instead
//! of consuming a wrong solution. Round/wall checks at round
//! granularity return `Err` instead (the program is consistent between
//! rounds, so no unwind is needed there).

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Resource limits for one optimization attempt. `None` = unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Maximum pde/pfe global rounds.
    pub max_rounds: Option<u64>,
    /// Maximum dfa worklist pops (FIFO + priority + seeded), summed
    /// across all solver runs under this budget.
    pub max_pops: Option<u64>,
    /// Wall-clock ceiling for the whole attempt.
    pub wall_time: Option<Duration>,
}

impl Budget {
    /// The no-limits budget (every check passes).
    pub const UNLIMITED: Budget = Budget {
        max_rounds: None,
        max_pops: None,
        wall_time: None,
    };

    /// Whether no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::UNLIMITED
    }
}

/// Typed exhaustion report; also the panic payload used to abort an
/// in-flight solve (and by `FAULT_INJECT=budget:...` directives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Which limit tripped: `"rounds"`, `"pops"`, `"wall_time"`, or
    /// `"injected"` for fault injection.
    pub resource: &'static str,
    /// The configured limit (milliseconds for `wall_time`).
    pub limit: u64,
    /// What had been spent when the check tripped.
    pub spent: u64,
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget exhausted: {} (spent {} of {})",
            self.resource, self.spent, self.limit
        )
    }
}

struct BudgetState {
    budget: Budget,
    start: Instant,
    pops: u64,
    rounds: u64,
}

thread_local! {
    static ACTIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static STATE: RefCell<Option<BudgetState>> = const { RefCell::new(None) };
    static CANCEL_ACTIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static CANCEL: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// A cooperative cancellation flag, shared between a supervisor (which
/// raises it) and a worker thread (which observes it at every budget
/// checkpoint). Deliberately *not* a field of [`Budget`] — budgets are
/// `Copy` snapshots of limits, while a token is live shared state — so
/// cancellation also works for workers running with an unlimited
/// budget.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Installs `token` on this thread for the guard's lifetime (shadowing
/// any outer token). While installed, [`check_cancelled`] — and through
/// it every budget checkpoint — aborts the in-flight work by panicking
/// with a typed [`BudgetExhausted`] payload (`resource: "cancelled"`)
/// once the token is raised, so the sandbox catches it like any other
/// budget trip and the resilience ladder takes over.
pub fn install_cancel(token: CancelToken) -> CancelGuard {
    let prev = CANCEL.with(|c| c.borrow_mut().replace(token));
    let prev_active = CANCEL_ACTIVE.with(|a| a.replace(true));
    CancelGuard { prev, prev_active }
}

/// RAII guard from [`install_cancel`]; restores the previous token.
pub struct CancelGuard {
    prev: Option<CancelToken>,
    prev_active: bool,
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        CANCEL.with(|c| *c.borrow_mut() = self.prev.take());
        CANCEL_ACTIVE.with(|a| a.set(self.prev_active));
    }
}

/// Aborts the in-flight attempt if this thread's installed
/// [`CancelToken`] has been raised. One thread-local read and a branch
/// when no token is installed; called from every budget checkpoint and
/// safe to call from any long-running loop.
///
/// # Panics
/// Panics with a [`BudgetExhausted`] payload (`resource: "cancelled"`)
/// when cancellation was requested.
#[inline]
pub fn check_cancelled() {
    if !CANCEL_ACTIVE.with(|a| a.get()) {
        return;
    }
    check_cancelled_slow();
}

#[cold]
fn check_cancelled_slow() {
    let cancelled = CANCEL.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled));
    if cancelled {
        std::panic::panic_any(BudgetExhausted {
            resource: "cancelled",
            limit: 0,
            spent: 0,
        });
    }
}

/// Installs `budget` on this thread for the guard's lifetime, shadowing
/// any outer budget (restored on drop). Installing an unlimited budget
/// keeps every instrumentation site on its one-branch fast path.
pub fn install(budget: Budget) -> BudgetGuard {
    let prev = if budget.is_unlimited() {
        STATE.with(|s| s.borrow_mut().take())
    } else {
        STATE.with(|s| {
            s.borrow_mut().replace(BudgetState {
                budget,
                start: Instant::now(),
                pops: 0,
                rounds: 0,
            })
        })
    };
    let prev_active = ACTIVE.with(|a| a.replace(!budget.is_unlimited()));
    BudgetGuard { prev, prev_active }
}

/// RAII guard from [`install`]; restores the previous budget on drop.
pub struct BudgetGuard {
    prev: Option<BudgetState>,
    prev_active: bool,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        STATE.with(|s| *s.borrow_mut() = self.prev.take());
        ACTIVE.with(|a| a.set(self.prev_active));
    }
}

/// Whether a (limited) budget is installed on this thread.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// How often (in pops) the wall clock is consulted from `charge_pops`:
/// `Instant::now` is too costly for every worklist pop.
const WALL_CHECK_MASK: u64 = 0xFF;

/// Charges `n` worklist pops against the active budget, if any.
///
/// # Panics
/// Panics with a [`BudgetExhausted`] payload when the pop or wall-time
/// limit is exceeded — an in-flight fixpoint cannot be used partially,
/// so the solve must unwind to the sandbox.
#[inline]
pub fn charge_pops(n: u64) {
    check_cancelled();
    if !active() {
        return;
    }
    charge_pops_slow(n);
}

#[cold]
fn charge_pops_slow(n: u64) {
    let exhausted = STATE.with(|s| {
        let mut s = s.borrow_mut();
        let state = s.as_mut()?;
        let before = state.pops;
        state.pops += n;
        if let Some(max) = state.budget.max_pops {
            if state.pops > max {
                return Some(BudgetExhausted {
                    resource: "pops",
                    limit: max,
                    spent: state.pops,
                });
            }
        }
        // Only look at the clock every few hundred pops.
        if before & !WALL_CHECK_MASK != state.pops & !WALL_CHECK_MASK {
            if let Some(wall) = state.budget.wall_time {
                let elapsed = state.start.elapsed();
                if elapsed > wall {
                    return Some(BudgetExhausted {
                        resource: "wall_time",
                        limit: wall.as_millis() as u64,
                        spent: elapsed.as_millis() as u64,
                    });
                }
            }
        }
        None
    });
    if let Some(e) = exhausted {
        std::panic::panic_any(e);
    }
}

/// Charges one pde/pfe round against the active budget and checks the
/// round and wall-time limits. Called between rounds, where the
/// program is consistent, so exhaustion is an `Err`, not an unwind.
pub fn charge_round() -> Result<(), BudgetExhausted> {
    check_cancelled();
    if !active() {
        return Ok(());
    }
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        let Some(state) = s.as_mut() else {
            return Ok(());
        };
        state.rounds += 1;
        if let Some(max) = state.budget.max_rounds {
            if state.rounds > max {
                return Err(BudgetExhausted {
                    resource: "rounds",
                    limit: max,
                    spent: state.rounds,
                });
            }
        }
        if let Some(wall) = state.budget.wall_time {
            let elapsed = state.start.elapsed();
            if elapsed > wall {
                return Err(BudgetExhausted {
                    resource: "wall_time",
                    limit: wall.as_millis() as u64,
                    spent: elapsed.as_millis() as u64,
                });
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_free() {
        assert!(!active());
        charge_pops(1_000_000);
        assert!(charge_round().is_ok());
        let _g = install(Budget::UNLIMITED);
        assert!(!active());
    }

    #[test]
    fn pop_limit_panics_with_payload() {
        let _g = install(Budget {
            max_pops: Some(10),
            ..Budget::UNLIMITED
        });
        charge_pops(10); // exactly at the limit: fine
        let err = std::panic::catch_unwind(|| charge_pops(1)).unwrap_err();
        let e = err
            .downcast_ref::<BudgetExhausted>()
            .expect("typed payload");
        assert_eq!(e.resource, "pops");
        assert_eq!(e.limit, 10);
    }

    #[test]
    fn round_limit_is_an_err() {
        let _g = install(Budget {
            max_rounds: Some(2),
            ..Budget::UNLIMITED
        });
        assert!(charge_round().is_ok());
        assert!(charge_round().is_ok());
        let e = charge_round().unwrap_err();
        assert_eq!(e.resource, "rounds");
    }

    #[test]
    fn wall_time_zero_trips_immediately() {
        let _g = install(Budget {
            wall_time: Some(Duration::ZERO),
            ..Budget::UNLIMITED
        });
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(charge_round().unwrap_err().resource, "wall_time");
    }

    #[test]
    fn cancellation_aborts_at_budget_checkpoints() {
        let token = CancelToken::new();
        let _g = install_cancel(token.clone());
        // Not yet raised: checkpoints pass, even with no budget.
        check_cancelled();
        charge_pops(1_000);
        assert!(charge_round().is_ok());
        token.cancel();
        let err = std::panic::catch_unwind(|| charge_pops(1)).unwrap_err();
        let e = err
            .downcast_ref::<BudgetExhausted>()
            .expect("typed payload");
        assert_eq!(e.resource, "cancelled");
        assert!(std::panic::catch_unwind(|| charge_round().ok()).is_err());
    }

    #[test]
    fn cancel_guard_restores_outer_token() {
        let outer = CancelToken::new();
        let g = install_cancel(outer.clone());
        {
            let _inner = install_cancel(CancelToken::new());
            outer.cancel();
            check_cancelled(); // inner token not raised: no abort
        }
        assert!(std::panic::catch_unwind(check_cancelled).is_err());
        drop(g);
        check_cancelled(); // no token installed: free
    }

    #[test]
    fn guard_restores_outer_budget() {
        let outer = install(Budget {
            max_pops: Some(5),
            ..Budget::UNLIMITED
        });
        {
            let _inner = install(Budget::UNLIMITED);
            assert!(!active());
            charge_pops(100); // inner scope: no limit
        }
        assert!(active());
        drop(outer);
        assert!(!active());
    }
}
