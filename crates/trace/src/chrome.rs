//! Chrome `trace_events` exporter.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of
//! duration (`B`/`E`), instant (`i`), and counter (`C`) events on one
//! process/thread track.
//!
//! Two clocks are supported:
//!
//! * [`Clock::Wall`] — microsecond wall-clock timestamps, for humans
//!   reading real durations;
//! * [`Clock::Logical`] — the collector's sequence numbers as
//!   timestamps, which makes the output **byte-deterministic** for a
//!   deterministic run (the schema-stability tests rely on this; span
//!   nesting and ordering are preserved exactly, only durations lose
//!   meaning).

use crate::json::write_escaped;
use crate::{ArgValue, Event, Phase};
use std::fmt::Write as _;

/// Timestamp source for the exported trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Wall-clock microseconds since collector creation.
    Wall,
    /// Logical event sequence numbers (deterministic).
    Logical,
}

/// Exporter options.
#[derive(Debug, Clone, Copy)]
pub struct ChromeOptions {
    /// Which clock to emit as `ts`.
    pub clock: Clock,
}

impl ChromeOptions {
    /// Wall-clock timestamps (the CLI default).
    pub fn wall() -> ChromeOptions {
        ChromeOptions { clock: Clock::Wall }
    }

    /// Logical timestamps (byte-deterministic output).
    pub fn logical() -> ChromeOptions {
        ChromeOptions {
            clock: Clock::Logical,
        }
    }
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, key);
        out.push(':');
        match value {
            ArgValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::Str(s) => write_escaped(out, s),
        }
    }
    out.push('}');
}

fn write_ts(out: &mut String, event: &Event, clock: Clock) {
    match clock {
        // Integer microseconds keep the formatting stable across
        // platforms (float formatting is deterministic in Rust, but
        // integer µs is also what chrome://tracing expects by default).
        Clock::Wall => {
            let _ = write!(out, "{}", event.wall_ns / 1_000);
        }
        Clock::Logical => {
            let _ = write!(out, "{}", event.seq);
        }
    }
}

/// Serializes `events` as a Chrome `trace_events` JSON object.
///
/// The output is one line per event, schema-stable: every event carries
/// `ph`, `pid`, `tid`, `ts`; begin/instant/counter events add `cat`,
/// `name`, and `args`; end events add `args` only when the span was
/// finished with args.
pub fn chrome_trace(events: &[Event], options: &ChromeOptions) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"ph\":");
        let ph = match event.phase {
            Phase::Begin => "\"B\"",
            Phase::End => "\"E\"",
            Phase::Instant => "\"i\"",
            Phase::Counter => "\"C\"",
        };
        out.push_str(ph);
        out.push_str(",\"pid\":1,\"tid\":1,\"ts\":");
        write_ts(&mut out, event, options.clock);
        match event.phase {
            Phase::End => {
                if !event.args.is_empty() {
                    out.push_str(",\"args\":");
                    write_args(&mut out, &event.args);
                }
            }
            Phase::Begin | Phase::Counter | Phase::Instant => {
                out.push_str(",\"cat\":");
                write_escaped(&mut out, event.cat);
                out.push_str(",\"name\":");
                write_escaped(&mut out, &event.name);
                if event.phase == Phase::Instant {
                    out.push_str(",\"s\":\"t\"");
                }
                out.push_str(",\"args\":");
                write_args(&mut out, &event.args);
            }
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::{install, span_with, Collector};
    use std::rc::Rc;

    fn sample_events() -> Vec<Event> {
        let c = Rc::new(Collector::new());
        {
            let _g = install(c.clone());
            let s = span_with("pass", "dce", vec![("width", ArgValue::U64(3))]);
            crate::counter("removed", 2);
            crate::instant("note", "split \"edge\"", vec![("block", "S_h_h".into())]);
            s.finish_with(vec![("evaluations", ArgValue::U64(12))]);
        }
        c.events()
    }

    #[test]
    fn output_is_valid_json_with_expected_shape() {
        let events = sample_events();
        let text = chrome_trace(&events, &ChromeOptions::wall());
        let doc = json::parse(&text).expect("valid JSON");
        let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("dce"));
        assert_eq!(arr[0].get("cat").unwrap().as_str(), Some("pass"));
        assert_eq!(
            arr[0].get("args").unwrap().get("width").unwrap().as_num(),
            Some(3.0)
        );
        assert_eq!(arr[1].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(arr[2].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(arr[2].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(arr[3].get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(
            arr[3]
                .get("args")
                .unwrap()
                .get("evaluations")
                .unwrap()
                .as_num(),
            Some(12.0)
        );
    }

    #[test]
    fn logical_clock_is_deterministic() {
        let a = chrome_trace(&sample_events(), &ChromeOptions::logical());
        let b = chrome_trace(&sample_events(), &ChromeOptions::logical());
        assert_eq!(a, b, "logical traces must be byte-identical");
        let doc = json::parse(&a).unwrap();
        let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ts: Vec<f64> = arr
            .iter()
            .map(|e| e.get("ts").unwrap().as_num().unwrap())
            .collect();
        assert_eq!(ts, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = chrome_trace(&[], &ChromeOptions::logical());
        let doc = json::parse(&text).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
    }
}
