//! Human-readable rendering of the provenance log — the `--explain`
//! answer to "why did this assignment disappear?".
//!
//! One line per record, grouped by global round, naming the responsible
//! pass, the action, the statement, and the block it happened in.

use crate::{ProvAction, ProvenanceRecord};
use std::fmt::Write as _;

/// Renders the provenance log like [`render`], followed by a one-line
/// analysis-reuse summary: how many fixpoints were solved cold versus
/// warm-started from a previous round's solution, and what the seeded
/// re-solves cost in worklist pops.
pub fn render_with_solver(records: &[ProvenanceRecord], solver: &crate::SolverStats) -> String {
    let mut out = render(records);
    let _ = writeln!(
        out,
        "analyses: {} cold solve(s), {} warm solve(s), {} seeded pop(s)",
        solver.cold_solves, solver.warm_solves, solver.seeded_pops
    );
    if solver.sparse_pops > 0 {
        let _ = writeln!(
            out,
            "sparse: {} chain task(s), {} edge visit(s)",
            solver.sparse_pops, solver.sparse_edge_visits
        );
    }
    out
}

/// Renders the provenance log, in record order, grouped by round.
pub fn render(records: &[ProvenanceRecord]) -> String {
    if records.is_empty() {
        return "no transformations recorded\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} transformation(s), in application order:",
        records.len()
    );
    let mut current_round: Option<u64> = None;
    for r in records {
        if current_round != Some(r.round) {
            current_round = Some(r.round);
            let _ = writeln!(out, "round {}:", r.round);
        }
        let verb = match r.action {
            ProvAction::Eliminated => "eliminated",
            ProvAction::Sunk => "sank",
            ProvAction::Inserted => "inserted",
        };
        let _ = writeln!(
            out,
            "  [{:<4}] {verb:<10} `{}` {} block {}  ({}, rev {})",
            r.pass,
            r.stmt,
            if r.action == ProvAction::Inserted {
                "into"
            } else {
                "from"
            },
            r.block,
            r.detail,
            r.revision
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(action: ProvAction, pass: &'static str, round: u64, stmt: &str) -> ProvenanceRecord {
        ProvenanceRecord {
            action,
            pass,
            round,
            revision: 40 + round,
            block: "n1".into(),
            stmt: stmt.into(),
            detail: "test",
        }
    }

    #[test]
    fn empty_log_renders_placeholder() {
        assert_eq!(render(&[]), "no transformations recorded\n");
    }

    #[test]
    fn solver_footer_names_cold_and_warm_solves() {
        let solver = crate::SolverStats {
            cold_solves: 2,
            warm_solves: 5,
            seeded_pops: 37,
            ..crate::SolverStats::ZERO
        };
        let text = render_with_solver(&[rec(ProvAction::Eliminated, "dce", 1, "x := 1")], &solver);
        assert!(text.contains("analyses: 2 cold solve(s), 5 warm solve(s), 37 seeded pop(s)"));
        assert!(!text.contains("sparse:"), "no sparse line when unused");
        let sparse = crate::SolverStats {
            sparse_pops: 4,
            sparse_edge_visits: 19,
            ..solver
        };
        let text = render_with_solver(&[rec(ProvAction::Eliminated, "dce", 1, "x := 1")], &sparse);
        assert!(text.contains("sparse: 4 chain task(s), 19 edge visit(s)"));
    }

    #[test]
    fn names_pass_round_action_and_statement() {
        let text = render(&[
            rec(ProvAction::Sunk, "sink", 1, "y := a + b"),
            rec(ProvAction::Inserted, "sink", 1, "y := a + b"),
            rec(ProvAction::Eliminated, "dce", 2, "y := a + b"),
        ]);
        assert!(text.contains("round 1:"));
        assert!(text.contains("round 2:"));
        assert!(text.contains("[dce ] eliminated `y := a + b` from block n1"));
        assert!(text.contains("[sink] sank"));
        assert!(text.contains("inserted   `y := a + b` into block n1"));
    }
}
