//! Fault injection for exercising the fault-tolerant driver.
//!
//! Every recovery path in the workspace — pass rollback, budget
//! degradation, translation-validation rollback — is only trustworthy
//! if it can be *driven* deterministically. This module provides the
//! hooks: named instrumentation sites (`fire`, `flip`) that normally
//! cost one thread-local flag read and a branch, armed either by the
//! `FAULT_INJECT` environment variable or by a scoped, thread-local
//! override for in-process tests.
//!
//! # Grammar
//!
//! ```text
//! FAULT_INJECT = directive ("," directive)*
//! directive    = kind ":" site ":" nth
//! kind         = "panic" | "budget" | "bitflip" | "stall" | "wedge"
//! site         = a named instrumentation point ("dce", "sink", "solve",
//!                "dead", pass names, ...)
//! nth          = 1-based occurrence number, or "*" for every occurrence
//! ```
//!
//! Examples: `FAULT_INJECT=panic:sink:1` panics the first sinking step;
//! `FAULT_INJECT=budget:solve:*` makes every solver invocation report
//! budget exhaustion; `FAULT_INJECT=bitflip:dead:1` corrupts the first
//! dead-variables solution (so translation validation must catch it).
//! The watchdog-oriented kinds hold a site hostage: `stall` sleeps
//! *cooperatively* (checking the cancellation flag, so a supervisor's
//! soft deadline frees it), while `wedge` sleeps through cancellation
//! entirely (only a hard deadline's re-dispatch gets the batch moving
//! again).
//! Directives are independent; occurrence counters are per-directive
//! and process-global (atomic), so injection behaves identically under
//! `--jobs N`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::budget::BudgetExhausted;

/// What an armed directive does when its site+occurrence matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (exercises `catch_unwind` sandboxes).
    Panic,
    /// Panic with a [`BudgetExhausted`] payload (exercises the
    /// degradation ladder without needing a real tiny budget).
    Budget,
    /// Tell the site to corrupt its own data — [`flip`] returns `true`
    /// (exercises translation validation).
    Bitflip,
    /// Sleep at the site while polling the cooperative cancellation
    /// flag (exercises the watchdog's soft deadline).
    Stall,
    /// Sleep at the site ignoring cancellation (exercises the
    /// watchdog's hard deadline and batch re-dispatch).
    Wedge,
}

/// How long the watchdog fault kinds hold their site. `stall` aborts
/// as soon as it is cancelled; `wedge` always serves the full term.
/// Both are far past any test watchdog deadline yet bounded, so an
/// unsupervised run still terminates.
const STALL_MAX: std::time::Duration = std::time::Duration::from_secs(10);
const STALL_SLICE: std::time::Duration = std::time::Duration::from_millis(2);
const WEDGE_TERM: std::time::Duration = std::time::Duration::from_millis(1_500);

/// One parsed `kind:site:nth` directive.
#[derive(Debug)]
struct Directive {
    kind: FaultKind,
    site: String,
    /// `None` means `*`: fire on every occurrence.
    nth: Option<u64>,
    /// How many times this directive's site has been hit so far.
    hits: AtomicU64,
}

/// Parses the `FAULT_INJECT` grammar. Returns `Err` with a message on
/// malformed specs (the CLI surfaces it; library users get a panic at
/// arm time rather than silent misconfiguration).
fn parse_spec(spec: &str) -> Result<Vec<Directive>, String> {
    let mut out = Vec::new();
    for raw in spec.split(',') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let mut parts = raw.splitn(3, ':');
        let (kind, site, nth) = match (parts.next(), parts.next(), parts.next()) {
            (Some(k), Some(s), Some(n)) => (k, s, n),
            _ => return Err(format!("fault directive `{raw}`: expected kind:site:nth")),
        };
        let kind = match kind {
            "panic" => FaultKind::Panic,
            "budget" => FaultKind::Budget,
            "bitflip" => FaultKind::Bitflip,
            "stall" => FaultKind::Stall,
            "wedge" => FaultKind::Wedge,
            other => {
                return Err(format!(
                    "fault directive `{raw}`: unknown kind `{other}` \
                     (expected panic|budget|bitflip|stall|wedge)"
                ))
            }
        };
        let nth = if nth == "*" {
            None
        } else {
            match nth.parse::<u64>() {
                Ok(n) if n >= 1 => Some(n),
                _ => {
                    return Err(format!(
                        "fault directive `{raw}`: nth must be a 1-based \
                         integer or `*`"
                    ))
                }
            }
        };
        if site.is_empty() {
            return Err(format!("fault directive `{raw}`: empty site"));
        }
        out.push(Directive {
            kind,
            site: site.to_string(),
            nth,
            hits: AtomicU64::new(0),
        });
    }
    Ok(out)
}

/// Directives parsed once from the environment.
fn env_directives() -> &'static [Directive] {
    static ENV: OnceLock<Vec<Directive>> = OnceLock::new();
    ENV.get_or_init(|| match std::env::var("FAULT_INJECT") {
        Ok(spec) if !spec.trim().is_empty() => match parse_spec(&spec) {
            Ok(d) => d,
            Err(msg) => panic!("invalid FAULT_INJECT: {msg}"),
        },
        _ => Vec::new(),
    })
}

thread_local! {
    /// In-process test override; takes precedence over the environment
    /// on this thread while a [`with_faults`] scope is active.
    static OVERRIDE: RefCell<Option<Vec<Directive>>> = const { RefCell::new(None) };
    /// Cheap armed check: `Some` once we know whether *any* directive
    /// exists for this thread (override or env).
    static ARMED: std::cell::Cell<Option<bool>> = const { std::cell::Cell::new(None) };
}

/// Runs `f` with `spec` as the active fault directives on this thread
/// (replacing any environment spec). For in-process tests; the CLI and
/// worker threads use the `FAULT_INJECT` environment variable.
///
/// # Panics
/// Panics immediately on a malformed `spec`.
pub fn with_faults<R>(spec: &str, f: impl FnOnce() -> R) -> R {
    let parsed = parse_spec(spec).unwrap_or_else(|msg| panic!("invalid fault spec: {msg}"));
    struct Guard(Option<Vec<Directive>>);
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| *o.borrow_mut() = self.0.take());
            ARMED.with(|a| a.set(None));
        }
    }
    let prev = OVERRIDE.with(|o| o.borrow_mut().replace(parsed));
    ARMED.with(|a| a.set(None));
    let _guard = Guard(prev);
    f()
}

/// Whether any fault directive is active for this thread. One
/// thread-local read and a branch after the first call.
#[inline]
pub fn armed() -> bool {
    ARMED.with(|a| match a.get() {
        Some(v) => v,
        None => {
            let v = OVERRIDE
                .with(|o| o.borrow().as_ref().map(|d| !d.is_empty()))
                .unwrap_or_else(|| !env_directives().is_empty());
            a.set(Some(v));
            v
        }
    })
}

/// Does `d` fire for this hit? Increments the directive's hit counter
/// as a side effect when the site matches.
fn matches(d: &Directive, site: &str) -> bool {
    if d.site != site {
        return false;
    }
    let hit = d.hits.fetch_add(1, Ordering::Relaxed) + 1;
    match d.nth {
        None => true,
        Some(n) => hit == n,
    }
}

/// Consults the active directives for `site`, returning the kind that
/// fires (at most one per call; `panic`/`budget` win over `bitflip`).
fn consult(site: &str) -> Option<FaultKind> {
    let pick = |dirs: &[Directive]| {
        let mut fired = None;
        for d in dirs {
            if matches(d, site) {
                match d.kind {
                    FaultKind::Bitflip => fired = Some(FaultKind::Bitflip),
                    _ => return Some(d.kind),
                }
            }
        }
        fired
    };
    let from_override = OVERRIDE.with(|o| o.borrow().as_ref().map(|d| pick(d)));
    match from_override {
        Some(k) => k,
        None => pick(env_directives()),
    }
}

/// Instrumentation point for `panic`/`budget` faults. Call at the top
/// of a named pass, step, or solver. No-op (one branch) when unarmed.
///
/// # Panics
/// Panics with a descriptive message (`panic` kind) or a
/// [`BudgetExhausted`] payload (`budget` kind) when a directive fires.
#[inline]
pub fn fire(site: &str) {
    if !armed() {
        return;
    }
    match consult(site) {
        Some(FaultKind::Panic) => panic!("injected fault: panic at `{site}`"),
        Some(FaultKind::Budget) => std::panic::panic_any(BudgetExhausted {
            resource: "injected",
            limit: 0,
            spent: 0,
        }),
        Some(FaultKind::Stall) => {
            let start = std::time::Instant::now();
            while start.elapsed() < STALL_MAX {
                std::thread::sleep(STALL_SLICE);
                // A raised cancellation flag aborts the stall by
                // panicking with the typed budget payload.
                crate::budget::check_cancelled();
            }
        }
        Some(FaultKind::Wedge) => std::thread::sleep(WEDGE_TERM),
        _ => {}
    }
}

/// Instrumentation point for `bitflip` faults: returns `true` when the
/// site should corrupt its own data. No-op (one branch) when unarmed.
#[inline]
pub fn flip(site: &str) -> bool {
    armed() && consult(site) == Some(FaultKind::Bitflip)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_silent() {
        fire("anything");
        assert!(!flip("anything"));
    }

    #[test]
    fn panic_fires_on_nth_occurrence_only() {
        with_faults("panic:dce:2", || {
            fire("dce"); // first occurrence: no fire
            let err = std::panic::catch_unwind(|| fire("dce"));
            assert!(err.is_err(), "second occurrence must panic");
            fire("dce"); // third occurrence: no fire
        });
    }

    #[test]
    fn star_fires_every_time() {
        with_faults("bitflip:dead:*", || {
            assert!(flip("dead"));
            assert!(flip("dead"));
            assert!(!flip("sink"));
        });
    }

    #[test]
    fn budget_kind_panics_with_typed_payload() {
        with_faults("budget:solve:1", || {
            let err = std::panic::catch_unwind(|| fire("solve")).unwrap_err();
            assert!(err.downcast_ref::<BudgetExhausted>().is_some());
        });
    }

    #[test]
    fn multiple_directives_are_independent() {
        with_faults("bitflip:dead:1,panic:sink:1", || {
            assert!(flip("dead"));
            assert!(!flip("dead"));
            assert!(std::panic::catch_unwind(|| fire("sink")).is_err());
        });
    }

    #[test]
    fn stall_is_freed_by_cancellation() {
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let _g = crate::budget::install_cancel(token);
        with_faults("stall:solve:1", || {
            let start = std::time::Instant::now();
            let err = std::panic::catch_unwind(|| fire("solve")).unwrap_err();
            assert!(
                err.downcast_ref::<BudgetExhausted>()
                    .is_some_and(|e| e.resource == "cancelled"),
                "stall aborts via the cancellation payload"
            );
            assert!(start.elapsed() < STALL_MAX, "freed well before the cap");
        });
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in ["panic:sink", "boom:sink:1", "panic:sink:0", "panic::1"] {
            assert!(parse_spec(bad).is_err(), "{bad} should be rejected");
        }
        assert!(parse_spec("panic:sink:1, budget:solve:*").is_ok());
    }

    #[test]
    fn override_ends_with_scope() {
        with_faults("panic:x:*", || {
            assert!(armed());
        });
        fire("x"); // back to (unarmed) environment spec
    }
}
