//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser for validating emitted documents.
//!
//! The workspace builds fully offline, so neither serde nor any other
//! JSON crate is available; the exporters construct their output by
//! string concatenation (deterministic formatting is a feature — the
//! trace tests require byte-identical output) and the tests and the
//! `BENCH_PDE.json` schema check parse with [`parse`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (irrelevant for
    /// validation); duplicate keys keep the last value.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Writes `s` as a JSON string literal (quotes included) onto `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a JSON string literal (quotes included).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates degrade to U+FFFD; the traces we
                            // validate never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\"y"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let tricky = "a\"b\\c\nd\te\u{1}f µs ∅";
        let lit = escaped(tricky);
        let back = parse(&lit).unwrap();
        assert_eq!(back.as_str(), Some(tricky));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""µs ∅""#).unwrap();
        assert_eq!(v.as_str(), Some("µs ∅"));
    }
}
