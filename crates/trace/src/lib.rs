//! Structured tracing for the PDCE workspace.
//!
//! The paper's evaluation (Section 6) is about *how much work* the
//! optimizer does — rounds to stabilization, second-order interactions,
//! the worst-case `O(n⁴)` behavior — and every future performance PR
//! needs a window into that work. This crate provides it with zero
//! external dependencies:
//!
//! * a **span/event model**: the [`Tracer`] trait, RAII [`Span`] guards,
//!   and a [`Collector`] that buffers [`Event`]s with both wall-clock
//!   and logical (sequence-number) timestamps;
//! * **solver telemetry**: an always-on, per-thread [`SolverStats`]
//!   accumulator the data-flow solvers feed (worklist pops, node
//!   revisits, bit-vector word operations, iterations to fixpoint);
//! * a **provenance log**: [`ProvenanceRecord`]s tie every statement a
//!   transform eliminated, sank, or inserted to the responsible pass,
//!   global round, and program revision — so a run can answer *"why did
//!   this assignment disappear?"*;
//! * two **exporters**: Chrome `trace_events` JSON ([`chrome`],
//!   loadable in `chrome://tracing`/Perfetto) and a human-readable
//!   rendering ([`explain`]).
//!
//! # Cost model
//!
//! Tracing is **disabled by default** and must stay compile-out cheap:
//! with no collector installed, every instrumentation site reduces to
//! one thread-local flag read and a branch (see [`enabled`]), and no
//! strings are formatted and no events allocated. The bench suite's
//! `tracing` bench and the `BENCH_PDE.json` A/B timing keep the
//! disabled-mode overhead under 2%. The [`SolverStats`] accumulator is
//! the one always-on piece: a handful of integer adds per *solver run*
//! (not per operation), which is unmeasurable against the solve itself.
//!
//! The collector is deliberately single-threaded ("lock-free-enough"):
//! one collector per thread, installed via a scoped [`install`] guard,
//! no atomics or locks anywhere on the hot path. Cross-thread
//! aggregation, if ever needed, happens at export time by merging
//! per-thread event buffers.
//!
//! # Example
//!
//! ```
//! use std::rc::Rc;
//! use pdce_trace as trace;
//!
//! let collector = Rc::new(trace::Collector::new());
//! {
//!     let _guard = trace::install(collector.clone());
//!     let span = trace::span("phase", "demo");
//!     trace::counter("items", 3);
//!     span.finish();
//! }
//! let events = collector.events();
//! assert_eq!(events.len(), 3); // begin, counter, end
//! let json = trace::chrome::chrome_trace(
//!     &events,
//!     &trace::chrome::ChromeOptions::logical(),
//! );
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

pub mod budget;
pub mod chrome;
pub mod explain;
pub mod fault;
pub mod json;
pub mod sandbox;

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;
use std::time::Instant;

/// A typed span/event argument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned counter-like value.
    U64(u64),
    /// A signed value.
    I64(i64),
    /// A short string (pass names, modes, block names).
    Str(String),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::I64(v) => write!(f, "{v}"),
            ArgValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::I64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// Event phase, mirroring the Chrome `trace_events` phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Point-in-time event (`"i"`).
    Instant,
    /// Counter sample (`"C"`).
    Counter,
}

/// One recorded trace event.
///
/// `seq` is a collector-local logical timestamp (events are totally
/// ordered by it); `wall_ns` is nanoseconds since the collector was
/// created. Exporters choose which clock to emit — the logical clock
/// makes traces byte-deterministic for deterministic runs.
#[derive(Debug, Clone)]
pub struct Event {
    /// Logical timestamp: position in the collector's event order.
    pub seq: u64,
    /// Wall-clock nanoseconds since collector creation.
    pub wall_ns: u64,
    /// Event phase.
    pub phase: Phase,
    /// Category (`"pass"`, `"round"`, `"solver"`, `"transform"`, ...).
    pub cat: &'static str,
    /// Event name (empty for bare span ends).
    pub name: Cow<'static, str>,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// What a transform did to a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvAction {
    /// Removed because its left-hand side was dead/faint.
    Eliminated,
    /// Removed as a sinking candidate (it re-materializes at the
    /// matching insertion points, possibly nowhere).
    Sunk,
    /// A pattern instance materialized at an insertion point.
    Inserted,
}

impl ProvAction {
    /// Stable lower-case label used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            ProvAction::Eliminated => "eliminated",
            ProvAction::Sunk => "sunk",
            ProvAction::Inserted => "inserted",
        }
    }
}

/// One entry of the transformation provenance log: which pass did what
/// to which statement, in which block, at which global round and
/// program revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// What happened to the statement.
    pub action: ProvAction,
    /// The responsible pass (`"dce"`, `"fce"`, `"sink"`, ...).
    pub pass: &'static str,
    /// The enclosing global round (0 outside any round scope).
    pub round: u64,
    /// `Program::revision()` at record time (pre-mutation).
    pub revision: u64,
    /// Name of the block the statement lived in (or was inserted into).
    pub block: String,
    /// The statement, printed.
    pub stmt: String,
    /// Why / where exactly (`"lhs dead after"`, `"entry insertion"`, ...).
    pub detail: &'static str,
}

/// A sink for trace events and provenance records.
///
/// The instrumentation sites in `pdce-dfa`, `pdce-core`, and
/// `pdce-pass` route through the thread-local tracer installed with
/// [`install`]; when none is installed they reduce to a flag check.
/// [`Collector`] is the standard implementation; custom tracers can
/// stream, filter, or drop events instead of buffering them.
pub trait Tracer {
    /// Records one event. The collector assigns `seq`/`wall_ns`; events
    /// passed in carry zeros there.
    fn record(&self, event: Event);

    /// Records one provenance entry.
    fn provenance(&self, record: ProvenanceRecord);
}

/// The buffering [`Tracer`]: appends events and provenance records to
/// growable per-thread buffers (no locks — one collector per thread).
pub struct Collector {
    epoch: Instant,
    seq: Cell<u64>,
    events: RefCell<Vec<Event>>,
    provenance: RefCell<Vec<ProvenanceRecord>>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// Creates an empty collector; its creation instant is the trace's
    /// time origin.
    pub fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            seq: Cell::new(0),
            events: RefCell::new(Vec::new()),
            provenance: RefCell::new(Vec::new()),
        }
    }

    /// A copy of the recorded events, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// A copy of the provenance log, in order.
    pub fn provenance(&self) -> Vec<ProvenanceRecord> {
        self.provenance.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Tracer for Collector {
    fn record(&self, mut event: Event) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        event.seq = seq;
        event.wall_ns = self.epoch.elapsed().as_nanos() as u64;
        self.events.borrow_mut().push(event);
    }

    fn provenance(&self, record: ProvenanceRecord) {
        self.provenance.borrow_mut().push(record);
    }
}

/// A [`Tracer`] that drops everything — the explicit form of the
/// "tracing disabled" default, for APIs that want a tracer value.
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&self, _event: Event) {}
    fn provenance(&self, _record: ProvenanceRecord) {}
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<dyn Tracer>>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static ROUND: Cell<u64> = const { Cell::new(0) };
    static SOLVER: Cell<SolverStats> = const { Cell::new(SolverStats::ZERO) };
}

/// Installs `tracer` as this thread's tracer until the guard drops
/// (the previous tracer, if any, is restored).
pub fn install(tracer: Rc<dyn Tracer>) -> InstallGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(tracer));
    let prev_enabled = ENABLED.with(|e| e.replace(true));
    InstallGuard { prev, prev_enabled }
}

/// Scoped tracer installation; restores the previous state on drop.
pub struct InstallGuard {
    prev: Option<Rc<dyn Tracer>>,
    prev_enabled: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
        ENABLED.with(|e| e.set(self.prev_enabled));
    }
}

/// Whether a tracer is installed on this thread. Instrumentation sites
/// branch on this before formatting names or building events, which is
/// what keeps disabled-mode overhead to a flag read.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

fn with_tracer(f: impl FnOnce(&dyn Tracer)) {
    CURRENT.with(|c| {
        if let Some(tracer) = c.borrow().as_ref() {
            f(tracer.as_ref());
        }
    });
}

/// An RAII span guard: records a [`Phase::Begin`] event on creation and
/// the matching [`Phase::End`] on [`finish`](Span::finish) (or drop).
///
/// A plain [`span`] costs nothing when tracing is disabled; a
/// [`timed_span`] additionally reads the monotonic clock so callers can
/// use the elapsed time for their own bookkeeping either way.
pub struct Span {
    live: bool,
    cat: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Nanoseconds since the span started (0 for untimed disabled spans).
    pub fn elapsed_ns(&self) -> u128 {
        self.start.map_or(0, |s| s.elapsed().as_nanos())
    }

    /// Ends the span, returning the elapsed nanoseconds.
    pub fn finish(self) -> u128 {
        self.finish_with(Vec::new())
    }

    /// Ends the span with arguments attached to the end event (Perfetto
    /// merges begin- and end-args into the slice), returning the
    /// elapsed nanoseconds.
    pub fn finish_with(mut self, args: Vec<(&'static str, ArgValue)>) -> u128 {
        let elapsed = self.elapsed_ns();
        if self.live {
            self.live = false;
            with_tracer(|t| {
                t.record(Event {
                    seq: 0,
                    wall_ns: 0,
                    phase: Phase::End,
                    cat: self.cat,
                    name: Cow::Borrowed(""),
                    args,
                });
            });
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            self.live = false;
            with_tracer(|t| {
                t.record(Event {
                    seq: 0,
                    wall_ns: 0,
                    phase: Phase::End,
                    cat: self.cat,
                    name: Cow::Borrowed(""),
                    args: Vec::new(),
                });
            });
        }
    }
}

/// Opens a span. No-op (and no clock read) when tracing is disabled.
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
    span_with(cat, name, Vec::new())
}

/// Opens a span with begin-event arguments.
pub fn span_with(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, ArgValue)>,
) -> Span {
    if !enabled() {
        return Span {
            live: false,
            cat,
            start: None,
        };
    }
    with_tracer(|t| {
        t.record(Event {
            seq: 0,
            wall_ns: 0,
            phase: Phase::Begin,
            cat,
            name: name.into(),
            args,
        });
    });
    Span {
        live: true,
        cat,
        start: None,
    }
}

/// Opens a span that always measures wall time, so callers needing the
/// elapsed time (e.g. pipeline per-pass metrics) get it from the same
/// guard whether or not tracing is on.
pub fn timed_span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
    let mut s = span(cat, name);
    s.start = Some(Instant::now());
    s
}

/// Records a counter sample.
pub fn counter(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_tracer(|t| {
        t.record(Event {
            seq: 0,
            wall_ns: 0,
            phase: Phase::Counter,
            cat: "counter",
            name: Cow::Borrowed(name),
            args: vec![("value", ArgValue::U64(value))],
        });
    });
}

/// Records a point-in-time event.
pub fn instant(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    with_tracer(|t| {
        t.record(Event {
            seq: 0,
            wall_ns: 0,
            phase: Phase::Instant,
            cat,
            name: name.into(),
            args,
        });
    });
}

/// Records a provenance entry and mirrors it into the event stream as
/// an instant event (so Chrome traces carry the full log too). Callers
/// should branch on [`enabled`] *before* building the record, to skip
/// statement printing when tracing is off.
pub fn provenance(record: ProvenanceRecord) {
    if !enabled() {
        return;
    }
    with_tracer(|t| {
        t.record(Event {
            seq: 0,
            wall_ns: 0,
            phase: Phase::Instant,
            cat: "provenance",
            name: Cow::Borrowed(record.action.label()),
            args: vec![
                ("pass", ArgValue::Str(record.pass.to_string())),
                ("round", ArgValue::U64(record.round)),
                ("revision", ArgValue::U64(record.revision)),
                ("block", ArgValue::Str(record.block.clone())),
                ("stmt", ArgValue::Str(record.stmt.clone())),
                ("detail", ArgValue::Str(record.detail.to_string())),
            ],
        });
        t.provenance(record);
    });
}

/// The current global-round number (0 outside any round scope).
#[inline]
pub fn round() -> u64 {
    ROUND.with(|r| r.get())
}

/// Enters global round `n`: emits a `round` span and makes `n` the
/// round recorded by provenance entries until the guard drops. Nested
/// scopes (a pipeline `repeat(...)` round driving the full `pde`
/// driver, which has rounds of its own) shadow and restore correctly.
pub fn round_scope(n: u64) -> RoundScope {
    let prev = ROUND.with(|r| r.replace(n));
    let span = span_with("round", "round", vec![("n", ArgValue::U64(n))]);
    RoundScope { prev, _span: span }
}

/// Scoped round marker; restores the previous round number on drop.
pub struct RoundScope {
    prev: u64,
    _span: Span,
}

impl Drop for RoundScope {
    fn drop(&mut self) {
        ROUND.with(|r| r.set(self.prev));
    }
}

/// Aggregated data-flow solver telemetry.
///
/// Accumulated per-thread and **always on** (a few integer adds per
/// solver run): unlike spans, these counters feed `PdceStats` and
/// `PipelineReport` accounting, which must not depend on whether a
/// tracer is installed. Deterministic for a fixed input: none of the
/// counted quantities depend on timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Solver runs (bit-vector sweeps and slotwise-network solves).
    pub problems: u64,
    /// Full sweeps over the node order until fixpoint (bit-vector
    /// solver only; the network solver is worklist-driven).
    pub sweeps: u64,
    /// Worklist pops / node evaluations: transfer-function applications
    /// (bit-vector) plus slot evaluations (network).
    pub evaluations: u64,
    /// Re-evaluations beyond the first visit of each node/slot.
    pub revisits: u64,
    /// `u64` word operations on bit vectors (meets, transfers,
    /// convergence compares), the paper's bit-vector cost unit.
    pub word_ops: u64,
    /// Worklist pops performed under the FIFO (reference) scheduling
    /// strategy. For the sweeping bit-vector solver every node
    /// evaluation is one pop of the implicit full-order worklist.
    pub fifo_pops: u64,
    /// Worklist pops performed under the priority (reverse-postorder /
    /// postorder) scheduling strategy.
    pub priority_pops: u64,
    /// Solver runs that started from the lattice bound on every node
    /// (no previous fixpoint available, or incremental solving off).
    pub cold_solves: u64,
    /// Solver runs seeded from a previous fixpoint, re-iterating only
    /// the dirty region and its dependence frontier.
    pub warm_solves: u64,
    /// Worklist pops performed inside warm (seeded) solver runs. Always
    /// priority-scheduled; disjoint from `fifo_pops`/`priority_pops`.
    pub seeded_pops: u64,
    /// Worklist pops performed under the sparse (def-use chain)
    /// scheduling strategy. The sparse solvers pop one task per
    /// pattern/variable (bit-vector solves) or per constant-false seed
    /// slot (the faint network); the chain traversal each task performs
    /// is counted separately in `sparse_edge_visits`.
    pub sparse_pops: u64,
    /// Def-use chain edges traversed by the sparse solvers while
    /// propagating a popped task's value through its occurrence set —
    /// the `O(affected edges)` quantity of the sparse formulation.
    pub sparse_edge_visits: u64,
}

impl SolverStats {
    /// The all-zero value.
    pub const ZERO: SolverStats = SolverStats {
        problems: 0,
        sweeps: 0,
        evaluations: 0,
        revisits: 0,
        word_ops: 0,
        fifo_pops: 0,
        priority_pops: 0,
        cold_solves: 0,
        warm_solves: 0,
        seeded_pops: 0,
        sparse_pops: 0,
        sparse_edge_visits: 0,
    };

    /// Adds `other` into `self`.
    pub fn add(&mut self, other: &SolverStats) {
        self.problems += other.problems;
        self.sweeps += other.sweeps;
        self.evaluations += other.evaluations;
        self.revisits += other.revisits;
        self.word_ops += other.word_ops;
        self.fifo_pops += other.fifo_pops;
        self.priority_pops += other.priority_pops;
        self.cold_solves += other.cold_solves;
        self.warm_solves += other.warm_solves;
        self.seeded_pops += other.seeded_pops;
        self.sparse_pops += other.sparse_pops;
        self.sparse_edge_visits += other.sparse_edge_visits;
    }

    /// The counter delta since an `earlier` snapshot (counters only
    /// grow, so plain subtraction is exact).
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            problems: self.problems - earlier.problems,
            sweeps: self.sweeps - earlier.sweeps,
            evaluations: self.evaluations - earlier.evaluations,
            revisits: self.revisits - earlier.revisits,
            word_ops: self.word_ops - earlier.word_ops,
            fifo_pops: self.fifo_pops - earlier.fifo_pops,
            priority_pops: self.priority_pops - earlier.priority_pops,
            cold_solves: self.cold_solves - earlier.cold_solves,
            warm_solves: self.warm_solves - earlier.warm_solves,
            seeded_pops: self.seeded_pops - earlier.seeded_pops,
            sparse_pops: self.sparse_pops - earlier.sparse_pops,
            sparse_edge_visits: self.sparse_edge_visits - earlier.sparse_edge_visits,
        }
    }

    /// Total worklist pops across all scheduling strategies, including
    /// pops inside warm (seeded) solver runs.
    pub fn pops(&self) -> u64 {
        self.fifo_pops + self.priority_pops + self.seeded_pops + self.sparse_pops
    }

    /// The standard key/value rendering used by span args and exporters.
    pub fn args(&self) -> Vec<(&'static str, ArgValue)> {
        vec![
            ("problems", ArgValue::U64(self.problems)),
            ("sweeps", ArgValue::U64(self.sweeps)),
            ("evaluations", ArgValue::U64(self.evaluations)),
            ("revisits", ArgValue::U64(self.revisits)),
            ("word_ops", ArgValue::U64(self.word_ops)),
            ("fifo_pops", ArgValue::U64(self.fifo_pops)),
            ("priority_pops", ArgValue::U64(self.priority_pops)),
            ("cold_solves", ArgValue::U64(self.cold_solves)),
            ("warm_solves", ArgValue::U64(self.warm_solves)),
            ("seeded_pops", ArgValue::U64(self.seeded_pops)),
            ("sparse_pops", ArgValue::U64(self.sparse_pops)),
            ("sparse_edge_visits", ArgValue::U64(self.sparse_edge_visits)),
        ]
    }
}

/// One worker's buffered trace output: the events and provenance
/// records its [`Collector`] accumulated, ready for deterministic
/// merging with [`merge_collected`].
#[derive(Debug, Clone, Default)]
pub struct Collected {
    /// Events in collector order.
    pub events: Vec<Event>,
    /// Provenance records in collector order.
    pub provenance: Vec<ProvenanceRecord>,
}

impl Collected {
    /// Drains `collector` into an owned part (the collector stays
    /// usable but is typically dropped afterwards).
    pub fn from_collector(collector: &Collector) -> Collected {
        Collected {
            events: collector.events(),
            provenance: collector.provenance(),
        }
    }
}

/// Merges per-worker trace buffers into one stream, deterministically.
///
/// The batch driver (`pdce-par`) runs each shard with its own
/// [`Collector`]; merging concatenates the parts **in shard index
/// order** (never in thread completion order) and renumbers the logical
/// clock (`seq`) so the merged stream is totally ordered. Exported with
/// the logical clock ([`chrome::ChromeOptions::logical`]) the result is
/// byte-identical for a fixed input set regardless of worker count or
/// scheduling — the determinism rule the differential oracle checks.
///
/// Wall-clock timestamps are per-collector origins and remain
/// meaningful only within a part; logical exports ignore them.
pub fn merge_collected(parts: Vec<Collected>) -> Collected {
    let mut merged = Collected::default();
    for part in parts {
        merged.provenance.extend(part.provenance);
        for mut event in part.events {
            event.seq = merged.events.len() as u64;
            merged.events.push(event);
        }
    }
    merged
}

/// Registry handles for the solver counter families. Registered lazily on
/// the first solve; every later update is a lock-free atomic add into the
/// process-global `pdce-metrics` registry, aggregating across all worker
/// threads (unlike the per-thread [`SolverStats`] accumulator below).
mod solver_metrics {
    use pdce_metrics::{global, Counter, Stability};
    use std::sync::{Arc, LazyLock};

    pub static FIFO_POPS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_solver_pops_total",
            "Worklist pops by solver strategy",
            Stability::Deterministic,
            &[("strategy", "fifo")],
        )
    });
    pub static PRIORITY_POPS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_solver_pops_total",
            "Worklist pops by solver strategy",
            Stability::Deterministic,
            &[("strategy", "priority")],
        )
    });
    pub static SPARSE_POPS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_solver_pops_total",
            "Worklist pops by solver strategy",
            Stability::Deterministic,
            &[("strategy", "sparse")],
        )
    });
    pub static SPARSE_EDGE_VISITS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_solver_edge_visits_total",
            "Def-use chain edges traversed by the sparse solvers",
            Stability::Deterministic,
            &[],
        )
    });
    pub static SEEDED_POPS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_solver_seeded_pops_total",
            "Worklist pops performed by warm-started (seeded) solves",
            Stability::Deterministic,
            &[],
        )
    });
    pub static WORD_OPS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_solver_word_ops_total",
            "Bit-vector word operations performed by solvers",
            Stability::Deterministic,
            &[],
        )
    });
    pub static COLD_SOLVES: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_solver_solves_total",
            "Data-flow problems solved, by start mode",
            Stability::Deterministic,
            &[("start", "cold")],
        )
    });
    pub static WARM_SOLVES: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_solver_solves_total",
            "Data-flow problems solved, by start mode",
            Stability::Deterministic,
            &[("start", "warm")],
        )
    });
}

/// Adds one solver run's counters into the per-thread accumulator and
/// mirrors the hot counters (pops, seeded pops, word ops, solve starts)
/// into the process-global metrics registry.
pub fn record_solver(delta: SolverStats) {
    SOLVER.with(|s| {
        let mut total = s.get();
        total.add(&delta);
        s.set(total);
    });
    solver_metrics::FIFO_POPS.add(delta.fifo_pops);
    solver_metrics::PRIORITY_POPS.add(delta.priority_pops);
    solver_metrics::SPARSE_POPS.add(delta.sparse_pops);
    solver_metrics::SPARSE_EDGE_VISITS.add(delta.sparse_edge_visits);
    solver_metrics::SEEDED_POPS.add(delta.seeded_pops);
    solver_metrics::WORD_OPS.add(delta.word_ops);
    solver_metrics::COLD_SOLVES.add(delta.cold_solves);
    solver_metrics::WARM_SOLVES.add(delta.warm_solves);
}

/// The per-thread solver counter totals since thread start. Snapshot
/// before and [`SolverStats::since`] after a region to attribute work.
pub fn solver_totals() -> SolverStats {
    SOLVER.with(|s| s.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_records_nothing_and_costs_no_clock() {
        assert!(!enabled());
        let s = span("cat", "name");
        assert_eq!(s.elapsed_ns(), 0);
        counter("x", 1);
        instant("cat", "i", Vec::new());
        assert_eq!(s.finish(), 0);
    }

    #[test]
    fn collector_orders_events_and_restores_previous_tracer() {
        let outer = Rc::new(Collector::new());
        let inner = Rc::new(Collector::new());
        let _g1 = install(outer.clone());
        span("a", "outer-span").finish();
        {
            let _g2 = install(inner.clone());
            assert!(enabled());
            counter("inner", 7);
        }
        counter("outer", 9);
        assert_eq!(inner.len(), 1);
        assert_eq!(outer.len(), 3);
        let events = outer.events();
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[2].name, "outer");
    }

    #[test]
    fn span_guard_ends_on_drop_and_finish_attaches_args() {
        let c = Rc::new(Collector::new());
        let _g = install(c.clone());
        {
            let _s = span("cat", "dropped");
        }
        let s = span("cat", "finished");
        s.finish_with(vec![("k", ArgValue::U64(5))]);
        let events = c.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[1].phase, Phase::End);
        assert!(events[1].args.is_empty());
        assert_eq!(events[3].args, vec![("k", ArgValue::U64(5))]);
    }

    #[test]
    fn timed_span_measures_even_when_disabled() {
        let s = timed_span("cat", "t");
        std::hint::black_box(0u64);
        assert!(s.start.is_some());
        // The value is clock-dependent; the test is that finish()
        // returns a reading (rather than panicking) with no tracer on.
        let _ns: u128 = s.finish();
    }

    #[test]
    fn round_scope_nests_and_restores() {
        assert_eq!(round(), 0);
        {
            let _r1 = round_scope(3);
            assert_eq!(round(), 3);
            {
                let _r2 = round_scope(8);
                assert_eq!(round(), 8);
            }
            assert_eq!(round(), 3);
        }
        assert_eq!(round(), 0);
    }

    #[test]
    fn provenance_routes_to_log_and_event_stream() {
        let c = Rc::new(Collector::new());
        let _g = install(c.clone());
        provenance(ProvenanceRecord {
            action: ProvAction::Eliminated,
            pass: "dce",
            round: 2,
            revision: 17,
            block: "n3".into(),
            stmt: "y := a + b".into(),
            detail: "lhs dead after",
        });
        let log = c.provenance();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].pass, "dce");
        assert_eq!(log[0].round, 2);
        let events = c.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cat, "provenance");
        assert_eq!(events[0].name, "eliminated");
    }

    #[test]
    fn solver_accumulator_adds_and_deltas() {
        let before = solver_totals();
        record_solver(SolverStats {
            problems: 1,
            sweeps: 2,
            evaluations: 10,
            revisits: 3,
            word_ops: 40,
            fifo_pops: 10,
            priority_pops: 0,
            cold_solves: 1,
            warm_solves: 0,
            seeded_pops: 0,
            sparse_pops: 0,
            sparse_edge_visits: 0,
        });
        record_solver(SolverStats {
            problems: 1,
            priority_pops: 6,
            ..SolverStats::ZERO
        });
        record_solver(SolverStats {
            problems: 1,
            sparse_pops: 4,
            sparse_edge_visits: 25,
            ..SolverStats::ZERO
        });
        let delta = solver_totals().since(&before);
        assert_eq!(delta.problems, 3);
        assert_eq!(delta.sweeps, 2);
        assert_eq!(delta.evaluations, 10);
        assert_eq!(delta.word_ops, 40);
        assert_eq!(delta.fifo_pops, 10);
        assert_eq!(delta.priority_pops, 6);
        assert_eq!(delta.sparse_pops, 4);
        assert_eq!(delta.sparse_edge_visits, 25);
        assert_eq!(delta.pops(), 20);
        assert_eq!(delta.cold_solves, 1);
        assert_eq!(delta.args().len(), 12);
    }

    #[test]
    fn merge_collected_orders_by_part_and_renumbers() {
        let make_part = |names: &[&'static str]| {
            let c = Rc::new(Collector::new());
            {
                let _g = install(c.clone());
                for n in names {
                    instant("merge-test", *n, Vec::new());
                }
            }
            Collected::from_collector(&c)
        };
        let a = make_part(&["a0", "a1"]);
        let b = make_part(&["b0"]);
        let merged = merge_collected(vec![a, b]);
        let names: Vec<&str> = merged.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["a0", "a1", "b0"]);
        let seqs: Vec<u64> = merged.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
