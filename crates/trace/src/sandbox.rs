//! Panic sandboxing for passes and work items.
//!
//! [`catch`] wraps a closure in `catch_unwind` and converts the panic
//! payload into a structured [`SandboxError`], distinguishing budget
//! exhaustion (a typed [`BudgetExhausted`] payload) from genuine
//! panics. While a sandboxed closure runs, the default panic hook's
//! stderr spew is suppressed on this thread — a recovered fault should
//! surface as one structured diagnostic, not a backtrace — but panics
//! on other threads (and un-sandboxed panics on this one) still print
//! normally.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use crate::budget::BudgetExhausted;

/// Why a sandboxed closure did not return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SandboxError {
    /// The closure panicked; carries the rendered panic message.
    Panic(String),
    /// The closure hit a work budget (or an injected budget fault).
    Budget(BudgetExhausted),
}

impl std::fmt::Display for SandboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SandboxError::Panic(msg) => write!(f, "panic: {msg}"),
            SandboxError::Budget(b) => write!(f, "{b}"),
        }
    }
}

impl SandboxError {
    /// The budget payload, when this is a budget exhaustion.
    pub fn budget(&self) -> Option<&BudgetExhausted> {
        match self {
            SandboxError::Budget(b) => Some(b),
            SandboxError::Panic(_) => None,
        }
    }
}

thread_local! {
    /// Nesting depth of active sandboxes on this thread; the panic
    /// hook stays quiet while it is non-zero.
    static QUIET: Cell<u32> = const { Cell::new(0) };
}

/// Chains a quiet-aware hook in front of whatever hook is installed.
/// Process-global, done once; cheap because the hook only runs when a
/// panic is already unwinding.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET.with(|q| q.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// Renders a panic payload as a message.
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(b) = payload.downcast_ref::<BudgetExhausted>() {
        b.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Converts a caught panic payload into a [`SandboxError`].
pub fn classify(payload: Box<dyn std::any::Any + Send>) -> SandboxError {
    match payload.downcast::<BudgetExhausted>() {
        Ok(b) => SandboxError::Budget(*b),
        Err(other) => SandboxError::Panic(payload_message(&*other)),
    }
}

/// Runs `f`, converting a panic into a structured [`SandboxError`] and
/// keeping the panic hook quiet while `f` runs.
///
/// The closure is treated as unwind-safe (`AssertUnwindSafe`): callers
/// hold the snapshot, so any state `f` was mutating must be discarded
/// or restored from a checkpoint on `Err` — that is the whole point of
/// the checkpoint/rollback protocol.
pub fn catch<R>(f: impl FnOnce() -> R) -> Result<R, SandboxError> {
    install_quiet_hook();
    QUIET.with(|q| q.set(q.get() + 1));
    let result = catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(q.get() - 1));
    result.map_err(classify)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_result_passes_through() {
        assert_eq!(catch(|| 7).unwrap(), 7);
    }

    #[test]
    fn panic_is_classified_with_message() {
        let err = catch(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(err, SandboxError::Panic("boom 42".to_string()));
    }

    #[test]
    fn budget_payload_is_classified_as_budget() {
        let payload = BudgetExhausted {
            resource: "pops",
            limit: 1,
            spent: 2,
        };
        let err = catch(|| std::panic::panic_any(payload.clone())).unwrap_err();
        assert_eq!(err.budget(), Some(&payload));
    }

    #[test]
    fn nested_sandboxes_stay_quiet_and_unwind_cleanly() {
        let err = catch(|| {
            let inner = catch(|| -> u32 { panic!("inner") });
            assert!(inner.is_err());
            panic!("outer")
        })
        .unwrap_err();
        assert_eq!(err, SandboxError::Panic("outer".to_string()));
        // Depth back to zero: a later panic would print normally.
        QUIET.with(|q| assert_eq!(q.get(), 0));
    }
}
