//! Tour of the hand-written corpus: run every `corpus/*.pdce` program
//! through the optimization levels and print a size/cost table.
//!
//! Run with: `cargo run --example corpus_tour`

use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce::ir::parser::parse;
use pdce::ir::{simplify_cfg, Program};

fn dynamic_cost(prog: &Program, decisions: Vec<usize>) -> u64 {
    let inputs: [(&str, i64); 4] = [("a", 54), ("b", 24), ("frame", 3), ("input", 7)];
    let mut env = Env::with_values(prog, &inputs);
    let mut oracle = ReplayOracle::new(decisions);
    run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 10_000,
        },
    )
    .executed_assignments
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("pdce"))
        .collect();
    files.sort();

    println!(
        "{:<24} {:>6} {:>9} {:>9} {:>10} {:>10}",
        "program", "stmts", "pde-stmts", "pfe-stmts", "dyn-orig", "dyn-pfe"
    );
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let original = parse(&src)?;

        // Record a run for cost comparison.
        let inputs: [(&str, i64); 4] = [("a", 54), ("b", 24), ("frame", 3), ("input", 7)];
        let mut env = Env::with_values(&original, &inputs);
        let mut oracle = SeededOracle::new(11);
        let reference = run(
            &original,
            &mut env,
            &mut oracle,
            ExecLimits {
                max_block_visits: 10_000,
            },
        );

        let mut with_pde = original.clone();
        optimize(&mut with_pde, &PdceConfig::pde())?;
        let mut with_pfe = original.clone();
        optimize(&mut with_pfe, &PdceConfig::pfe())?;
        simplify_cfg(&mut with_pfe);

        println!(
            "{:<24} {:>6} {:>9} {:>9} {:>10} {:>10}",
            path.file_name().unwrap().to_string_lossy(),
            original.num_stmts(),
            with_pde.num_stmts(),
            with_pfe.num_stmts(),
            reference.executed_assignments,
            dynamic_cost(&with_pfe, reference.decisions.clone()),
        );
    }
    println!("\n(dyn = executed assignments on the same decision sequence)");
    Ok(())
}
