//! Theorem 5.2, visibly: enumerate the (bounded) universe `G_PDE` of a
//! small program, list a few members with their worst-case per-path
//! costs, and confirm the driver's result dominates all of them.
//!
//! Run with: `cargo run --example explore_universe`

use pdce::core::better::{is_better, BetterOptions};
use pdce::core::driver::pde;
use pdce::core::universe::{explore, UniverseOptions};
use pdce::ir::edgesplit::split_critical_edges;
use pdce::ir::parser::parse;
use pdce::ir::paths::enumerate_paths;
use pdce::ir::pattern::path_pattern_counts;
use pdce::ir::printer::canonical_string;
use pdce::ir::Program;

/// Worst-case total assignment occurrences over all complete paths.
fn worst_path_cost(p: &Program) -> u64 {
    enumerate_paths(p, 10_000)
        .expect("example program is acyclic")
        .iter()
        .map(|path| path_pattern_counts(p, path).values().sum::<u64>())
        .max()
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1 with an extra twist: two patterns compete.
    let mut start = parse(
        "prog {
           block s  { goto n1 }
           block n1 { y := a + b; x := c + d; nondet n2 n3 }
           block n2 { y := 4; out(x); goto n4 }
           block n3 { out(y); goto n4 }
           block n4 { out(y); goto e }
           block e  { halt }
         }",
    )?;
    split_critical_edges(&mut start);

    let result = explore(&start, &UniverseOptions::default());
    println!(
        "bounded universe of the start program: {} members (truncated: {})",
        result.programs.len(),
        result.truncated
    );

    let mut optimized = start.clone();
    pde(&mut optimized)?;
    println!(
        "\npde result (worst path cost {}):",
        worst_path_cost(&optimized)
    );
    println!("{}", canonical_string(&optimized));

    // Rank a few universe members by their worst path cost.
    let mut ranked: Vec<(u64, String)> = result
        .programs
        .iter()
        .map(|p| (worst_path_cost(p), canonical_string(p)))
        .collect();
    ranked.sort();
    println!("\ncheapest universe members by worst-case path cost:");
    for (cost, key) in ranked.iter().take(3) {
        println!("--- cost {cost} ---\n{key}\n");
    }

    // The theorem: the driver's output dominates every member, per path.
    let opts = BetterOptions::default();
    let mut dominated = 0;
    for competitor in &result.programs {
        let report = is_better(&optimized, competitor, &opts);
        assert!(
            report.holds(),
            "not optimal?! beaten by:\n{}",
            canonical_string(competitor)
        );
        dominated += 1;
    }
    println!("pde output dominates all {dominated} universe members — Theorem 5.2 ✔");
    Ok(())
}
