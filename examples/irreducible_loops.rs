//! Figures 5/6 and the Briggs–Cooper comparison: sinking across
//! (irreducible) loops without ever impairing an execution.
//!
//! The program carries `x := a + b` across a two-entry irreducible
//! region, eliminates it on the branch that recomputes `x`, and parks it
//! in the synthetic node on the loop-entry edge — but never pushes it
//! *into* the loop. A naive loop-oblivious sinker does push it in, and
//! no amount of partial redundancy elimination gets the per-iteration
//! assignment back out.
//!
//! Run with: `cargo run --example irreducible_loops`

use pdce::baselines::naive_sink;
use pdce::core::driver::pde;
use pdce::ir::edgesplit::split_critical_edges;
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle};
use pdce::ir::parser::parse;
use pdce::ir::printer::print_program;
use pdce::ir::{CfgView, Program};
use pdce::lcm::lazy_code_motion;

const FIG5: &str = "prog {
    block n1 { x := a + b; nondet n2 n3 }
    block n2 { nondet n3 n4 }
    block n3 { nondet n2 n4 }
    block n4 { nondet n5 n6 }
    block n5 { nondet n7 n8 }
    block n6 { x := c + 1; out(x); goto n10 }
    block n7 { y := y + x; goto n9 }
    block n8 { goto n9 }
    block n9 { nondet n5 n10 }
    block n10 { out(y); goto e }
    block e { halt }
}";

/// Take the loop `n5 → {n7|n8} → n9 → n5` for `k` iterations, then exit.
fn decisions(k: usize) -> Vec<usize> {
    let mut d = vec![0, 1]; // n1→n2, n2→n4 (through the irreducible region)
    d.push(0); // n4 → n5 (enter the loop)
    for i in 0..k {
        d.push(i % 2); // n5: n7 or n8
        d.push(0); // n9: back to n5
    }
    d.push(0); // one more n7
    d.push(1); // n9 → n10
    d
}

fn cost(prog: &Program, d: Vec<usize>) -> u64 {
    let mut env = Env::with_values(prog, &[("a", 2), ("b", 3), ("c", 4)]);
    let mut oracle = ReplayOracle::new(d);
    let t = run(prog, &mut env, &mut oracle, ExecLimits::default());
    assert!(t.completed);
    t.executed_assignments
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut original = parse(FIG5)?;
    println!(
        "the flow graph is irreducible: {}",
        !CfgView::new(&original).is_reducible()
    );
    split_critical_edges(&mut original);

    let mut optimized = original.clone();
    let stats = pde(&mut optimized)?;
    println!(
        "=== pde result (Figure 6) ===\n{}",
        print_program(&optimized)
    );
    println!(
        "rounds: {}, eliminated: {}, synthetic blocks: {}\n",
        stats.rounds, stats.eliminated_assignments, stats.synthetic_blocks
    );

    // The paper: "their algorithm would sink the instruction of node
    // S4,5 into the loop to node 7" — so the naive sinker starts where
    // pde (correctly) stopped.
    let mut naive = optimized.clone();
    let outcome = naive_sink(&mut naive);
    assert!(outcome.loop_moves >= 1, "strawman must take the bait");
    println!(
        "naive sinker made {} loop move(s); then PRE 'repairs' it:",
        outcome.loop_moves
    );
    let mut repaired = naive.clone();
    lazy_code_motion(&mut repaired)?;
    println!("{}", print_program(&repaired));

    println!("dynamic executed assignments (k = loop iterations):");
    println!(
        "{:>4} {:>10} {:>10} {:>12} {:>14}",
        "k", "original", "pde", "naive-sink", "naive+PRE"
    );
    for k in [1usize, 4, 16, 64] {
        println!(
            "{:>4} {:>10} {:>10} {:>12} {:>14}",
            k,
            cost(&original, decisions(k)),
            cost(&optimized, decisions(k)),
            cost(&naive, decisions(k)),
            cost(&repaired, decisions(k)),
        );
    }
    println!("\npde never impairs an execution; the naive sinker pays per iteration.");
    Ok(())
}
