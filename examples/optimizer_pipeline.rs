//! A realistic mini-backend: random "compiler output" run through the
//! full optimization stack — every level is a textual [`Pipeline`] spec
//! composed from the workspace's registered passes — with a dynamic
//! cost report comparing every optimization level.
//!
//! Run with: `cargo run --example optimizer_pipeline [seed]`

use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce::ir::printer::print_program;
use pdce::ir::Program;
use pdce::pass::Pipeline;
use pdce::progen::{structured, GenConfig};

struct Level {
    name: &'static str,
    /// A pipeline spec; every level is just a different composition of
    /// the same registered passes.
    spec: &'static str,
}

const LEVELS: &[Level] = &[
    Level {
        name: "original",
        spec: "",
    },
    Level {
        name: "dce",
        spec: "liveness-dce",
    },
    Level {
        name: "pde",
        spec: "pde",
    },
    Level {
        name: "pfe",
        spec: "pfe",
    },
    Level {
        name: "full-stack",
        spec: "split-edges,sccp,lvn,copyprop,lcm,pfe,simplify",
    },
];

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024u64);
    let prog = structured(&GenConfig {
        seed,
        target_blocks: 28,
        num_vars: 6,
        out_prob: 0.15,
        ..GenConfig::default()
    });
    println!("=== generated program (seed {seed}) ===");
    println!("{}", print_program(&prog));

    // Reference run to record branch decisions (conditional programs
    // ignore them, nondet ones replay them).
    let inputs: [(&str, i64); 3] = [("v0", 5), ("v1", -2), ("v2", 9)];
    let mut env = Env::with_values(&prog, &inputs);
    let mut oracle = SeededOracle::new(7);
    let reference = run(&prog, &mut env, &mut oracle, ExecLimits::default());

    println!(
        "{:<12} {:>8} {:>8} {:>12} {:>9} {:>10}",
        "level", "blocks", "stmts", "dyn-assigns", "dyn-ops", "outputs-ok"
    );
    let mut full_stack_report = None;
    for level in LEVELS {
        let mut q: Program = prog.clone();
        if !level.spec.is_empty() {
            let pipeline = Pipeline::parse(level.spec).expect("level specs are well-formed");
            let report = pipeline.run(&mut q);
            if level.name == "full-stack" {
                full_stack_report = Some(report);
            }
        }
        let mut env = Env::with_values(&q, &inputs);
        let mut oracle = ReplayOracle::new(reference.decisions.clone());
        let t = run(&q, &mut env, &mut oracle, ExecLimits::default());
        println!(
            "{:<12} {:>8} {:>8} {:>12} {:>9} {:>10}",
            level.name,
            q.num_blocks(),
            q.num_stmts(),
            t.executed_assignments,
            t.executed_operations,
            t.outputs == reference.outputs
        );
        assert_eq!(
            t.outputs, reference.outputs,
            "{} broke semantics",
            level.name
        );
    }

    if let Some(report) = full_stack_report {
        println!("\n=== full-stack per-pass metrics ===");
        print!("{}", report.render());
        println!(
            "analysis cache: {} hit(s), {} miss(es)",
            report.cache.hits(),
            report.cache.misses()
        );
    }
}
