//! A realistic mini-backend: random "compiler output" run through the
//! full optimization stack — copy propagation, lazy code motion, and
//! partial faint code elimination — with a dynamic cost report
//! comparing every optimization level.
//!
//! Run with: `cargo run --example optimizer_pipeline [seed]`

use pdce::baselines::{copy_propagate, liveness_dce};
use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::edgesplit::split_critical_edges;
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce::ir::printer::print_program;
use pdce::ir::Program;
use pdce::lcm::lazy_code_motion;
use pdce::progen::{structured, GenConfig};

struct Level {
    name: &'static str,
    build: fn(&Program) -> Program,
}

fn level_original(p: &Program) -> Program {
    p.clone()
}

fn level_dce(p: &Program) -> Program {
    let mut q = p.clone();
    liveness_dce(&mut q);
    q
}

fn level_pde(p: &Program) -> Program {
    let mut q = p.clone();
    optimize(&mut q, &PdceConfig::pde()).expect("pde terminates");
    q
}

fn level_pfe(p: &Program) -> Program {
    let mut q = p.clone();
    optimize(&mut q, &PdceConfig::pfe()).expect("pfe terminates");
    q
}

fn level_full(p: &Program) -> Program {
    let mut q = p.clone();
    split_critical_edges(&mut q);
    pdce::ssa::sccp(&mut q); // constants + branch folding (Wegman–Zadeck)
    pdce::baselines::local_value_numbering(&mut q);
    copy_propagate(&mut q);
    lazy_code_motion(&mut q).expect("edges split");
    optimize(&mut q, &PdceConfig::pfe()).expect("pfe terminates");
    pdce::ir::simplify_cfg(&mut q);
    q
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024u64);
    let prog = structured(&GenConfig {
        seed,
        target_blocks: 28,
        num_vars: 6,
        out_prob: 0.15,
        ..GenConfig::default()
    });
    println!("=== generated program (seed {seed}) ===");
    println!("{}", print_program(&prog));

    let levels = [
        Level { name: "original", build: level_original },
        Level { name: "dce", build: level_dce },
        Level { name: "pde", build: level_pde },
        Level { name: "pfe", build: level_pfe },
        Level { name: "full-stack", build: level_full },
    ];

    // Reference run to record branch decisions (conditional programs
    // ignore them, nondet ones replay them).
    let inputs: [(&str, i64); 3] = [("v0", 5), ("v1", -2), ("v2", 9)];
    let mut env = Env::with_values(&prog, &inputs);
    let mut oracle = SeededOracle::new(7);
    let reference = run(&prog, &mut env, &mut oracle, ExecLimits::default());

    println!(
        "{:<12} {:>8} {:>8} {:>12} {:>9} {:>10}",
        "level", "blocks", "stmts", "dyn-assigns", "dyn-ops", "outputs-ok"
    );
    for level in &levels {
        let q = (level.build)(&prog);
        let mut env = Env::with_values(&q, &inputs);
        let mut oracle = ReplayOracle::new(reference.decisions.clone());
        let t = run(&q, &mut env, &mut oracle, ExecLimits::default());
        println!(
            "{:<12} {:>8} {:>8} {:>12} {:>9} {:>10}",
            level.name,
            q.num_blocks(),
            q.num_stmts(),
            t.executed_assignments,
            t.executed_operations,
            t.outputs == reference.outputs
        );
        assert_eq!(t.outputs, reference.outputs, "{} broke semantics", level.name);
    }
}
