//! Quickstart: partial dead code elimination on the paper's motivating
//! example (Figure 1 → Figure 2).
//!
//! Run with: `cargo run --example quickstart`

use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::parser::parse;
use pdce::ir::printer::print_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1: `y := a + b` is dead on the branch that immediately
    // redefines y, and alive on the other.
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";
    let mut prog = parse(src)?;

    println!("=== before (Figure 1) ===");
    println!("{}", print_program(&prog));

    let stats = optimize(&mut prog, &PdceConfig::pde())?;

    println!("=== after pde (Figure 2) ===");
    println!("{}", print_program(&prog));

    println!("--- statistics ---");
    println!("global rounds (r):        {}", stats.rounds);
    println!("assignments eliminated:   {}", stats.eliminated_assignments);
    println!("sinking candidates moved: {}", stats.sunk_assignments);
    println!("instances inserted:       {}", stats.inserted_assignments);
    println!("code growth factor (ω):   {:.2}", stats.growth_factor());

    // The partially dead assignment was sunk into both branches and its
    // dead copy (before `y := 4`) eliminated: every execution that takes
    // the left branch now skips the useless computation.
    assert_eq!(stats.eliminated_assignments, 1);
    Ok(())
}
