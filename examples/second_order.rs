//! Second-order effects, step by step (Section 4 of the paper).
//!
//! Runs the elementary transformations by hand — one elimination pass or
//! one sinking pass at a time — and prints the program after each step,
//! making the mutual dependence of sinking and elimination visible:
//!
//! * Figure 3/4:  sinking–elimination across a loop,
//! * Figure 10:   sinking–sinking,
//! * Figure 11:   elimination–sinking,
//! * Figure 12:   elimination–elimination (and how faint mode collapses
//!   it into a single pass).
//!
//! Run with: `cargo run --example second_order`

use pdce::core::elim::{eliminate_once, Mode};
use pdce::core::sink::sink_assignments;
use pdce::ir::edgesplit::split_critical_edges;
use pdce::ir::parser::parse;
use pdce::ir::printer::print_program;
use pdce::ir::Program;

fn trace_fixpoint(
    title: &str,
    src: &str,
    mode: Mode,
) -> Result<Program, Box<dyn std::error::Error>> {
    println!("================================================");
    println!("{title}");
    println!("================================================");
    let mut prog = parse(src)?;
    split_critical_edges(&mut prog);
    println!("initial:\n{}", print_program(&prog));
    for round in 1..=20 {
        let mut changed = false;
        loop {
            let removed = eliminate_once(&mut prog, mode);
            if removed == 0 {
                break;
            }
            changed = true;
            println!(
                "round {round}: {} eliminated {removed} assignment(s):\n{}",
                match mode {
                    Mode::Dead => "dce",
                    Mode::Faint => "fce",
                },
                print_program(&prog)
            );
        }
        let before = pdce::ir::printer::canonical_string(&prog);
        sink_assignments(&mut prog)?;
        if pdce::ir::printer::canonical_string(&prog) != before {
            changed = true;
            println!(
                "round {round}: ask sank assignments:\n{}",
                print_program(&prog)
            );
        }
        if !changed {
            println!("round {round}: stable — done after {} round(s)\n", round);
            break;
        }
    }
    Ok(prog)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    trace_fixpoint(
        "Figure 3/4: the 'loop invariant' fragment leaves the loop",
        "prog {
            block s { goto h }
            block h { y := a + b; c := y - d; nondet hb after }
            block hb { x := x + 1; goto h }
            block after { nondet n7 n8 }
            block n7 { out(c); goto e }
            block n8 { out(x); goto e }
            block e { halt }
        }",
        Mode::Dead,
    )?;

    trace_fixpoint(
        "Figure 10: sinking–sinking (a := c must move before y := a + b can)",
        "prog {
            block s  { goto n1 }
            block n1 { y := a + b; goto n2 }
            block n2 { a := c; nondet n3 n4 }
            block n3 { y := d; goto n5 }
            block n4 { goto n5 }
            block n5 { x := a + c; goto n6 }
            block n6 { out(x + y); goto e }
            block e  { halt }
        }",
        Mode::Dead,
    )?;

    trace_fixpoint(
        "Figure 11: elimination–sinking (dead z := y + 1 blocks y := a + b)",
        "prog {
            block s  { goto n1 }
            block n1 { y := a + b; z := y + 1; z := 2; nondet n4 n5 }
            block n4 { y := 0; out(z); goto e }
            block n5 { out(y); goto e }
            block e  { halt }
        }",
        Mode::Dead,
    )?;

    let fig12 = "prog {
        block s  { a := c + 1; nondet n3 n4 }
        block n3 { goto n5 }
        block n4 { y := a + b; goto n5 }
        block n5 { y := c + d; out(y); goto e }
        block e  { halt }
    }";
    trace_fixpoint(
        "Figure 12 under DEAD elimination: two cascading passes",
        fig12,
        Mode::Dead,
    )?;
    trace_fixpoint(
        "Figure 12 under FAINT elimination: a single pass",
        fig12,
        Mode::Faint,
    )?;
    Ok(())
}
