//! The `pdce` command-line tool.
//!
//! ```text
//! pdce opt     [--mode pde|pfe|dce|fce | --passes SPEC] [--region a,b,c]
//!              [--max-rounds N] [--stats] [--trace FILE.json] [--explain]
//!              [--no-incremental] [FILE]           optimize a program
//! pdce run     [--in name=value]... [--seed N] [--fuel N] [FILE]
//!                                                  interpret a program
//! pdce analyze [FILE]                              per-block analysis facts
//! pdce dot     [FILE]                              Graphviz export
//! pdce check   [FILE]                              parse + validate only
//! ```
//!
//! `FILE` defaults to standard input. Programs use the textual language
//! of `pdce::ir::parser` (see the repository README).

use std::io::Read;
use std::process::ExitCode;

use pdce::core::better::{check_improvement, BetterOptions};
use pdce::core::driver::{optimize, optimize_resilient, PdceConfig};
use pdce::dfa::SolverStrategy;
use pdce::ir::interp::{run, Env, ExecLimits, SeededOracle};
use pdce::ir::parser::parse;
use pdce::ir::printer::{print_program, print_stmt};
use pdce::ir::{CfgView, Program};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        // Exit-code contract: 1 = bad input (unreadable or unparseable
        // program), 2 = internal failure (optimizer bug, verify
        // violation, environment error).
        Err(CliError::BadInput(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Internal(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  pdce opt     [--mode pde|pfe|dce|fce | --passes SPEC] [--region a,b,c]
               [--max-rounds N] [--solver fifo|priority|sparse] [--jobs N]
               [--simplify] [--stats] [--verify] [--no-incremental]
               [--validate-semantics[=K]] [--max-pops N] [--wall-ms N]
               [--trace FILE.json] [--explain] [--metrics]
               [--metrics-out FILE.prom] [--events-out FILE.jsonl]
               [FILE...]
               SPEC is a comma-separated pass list with repeat(...) groups,
               e.g. --passes 'sccp,lvn,repeat(fce,sink),simplify'
               --trace writes a Chrome trace_events JSON (chrome://tracing,
               ui.perfetto.dev); --explain prints the provenance log: which
               pass moved/inserted/eliminated which statement in which round
               --solver picks the data-flow scheduling strategy (default:
               priority; the SOLVER env var works too); --no-incremental
               disables warm-start seeded re-solving between rounds (the
               INCREMENTAL env var works too); with several FILEs
               the programs are optimized independently and printed in
               argument order — --jobs N shards them over N workers
               (0 = all cores) with deterministic, jobs-independent output
               --validate-semantics runs translation validation after
               every round on K seeded input vectors (default 8; the TV
               env var works too) and rolls back any round that changes
               observable behaviour; --max-pops / --wall-ms bound the
               solver worklist and wall clock — an exhausted budget
               degrades the run down the resilience ladder instead of
               failing (cold solve, fifo solver, elimination only, and
               finally the identity transformation)
               --metrics appends the run's metric registry (counters and
               latency quantiles) to the --stats output; --metrics-out
               writes the same registry as a Prometheus text-exposition
               snapshot at exit; --events-out writes a structured JSONL
               event log (run id, per-file and per-pass attribution)
               whose bytes are independent of --jobs
  pdce serve   [--tcp ADDR | --unix PATH] [--jobs N]
               [--solver fifo|priority|sparse]
               [--no-incremental] [--max-rounds N] [--max-pops N] [--wall-ms N]
               [--validate-semantics[=K]] [--cache FILE] [--cache-bytes N]
               [--fsync-every N] [--max-strikes K] [--retry-backoff-ms N]
               [--watchdog-soft-ms N] [--watchdog-hard-ms N]
               [--no-cache] [--max-request-bytes N] [--metrics-out FILE.prom]
               long-lived optimization service: newline-delimited JSON
               requests on stdin (responses on stdout), or on a TCP/Unix
               socket with --tcp/--unix. Each request is
               {\"op\":\"optimize\",\"program\":\"...\",\"mode\":\"pde\",...}
               and each response carries a status field reusing the exit
               codes below per request (0 served, 1 bad request, 2
               internal). --max-rounds/--max-pops/--wall-ms are admission
               caps: requests may lower them, never raise them. --cache
               persists the content-hash-keyed result cache across
               restarts; --cache-bytes bounds it (LRU). Inserts are
               journaled to a checksummed write-ahead log beside the
               cache file and fsynced every --fsync-every appends, so a
               crash loses at most the unsynced tail. Requests that
               panic or blow their budget are retried on lower rungs
               with --retry-backoff-ms exponential backoff; after
               --max-strikes failures a program hash is quarantined
               (0 disables). --watchdog-soft-ms/--watchdog-hard-ms
               bound wall time per request even for wedged workers.
               {\"op\":\"health\"} returns a one-line self-healing
               snapshot (WAL, quarantine, breaker, retry counters).
               The loop exits on stdin EOF or an {\"op\":\"shutdown\"}
               request, after draining every request already read.
  pdce run     [--in name=value]... [--seed N] [--fuel N] [FILE]
  pdce analyze [FILE]
  pdce universe [--mode pde|pfe] [--max N] [FILE]
  pdce dot     [FILE]
  pdce check   [FILE]

exit codes: 0 success, 1 bad input, 2 usage or internal failure";

enum CliError {
    Usage(String),
    /// The user's program could not be read or parsed (exit 1).
    BadInput(String),
    /// Anything that is our fault or the environment's (exit 2).
    Internal(String),
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn bad_input(msg: impl std::fmt::Display) -> CliError {
    CliError::BadInput(msg.to_string())
}

fn failed(msg: impl std::fmt::Display) -> CliError {
    CliError::Internal(msg.to_string())
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(usage("missing subcommand"));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "opt" => cmd_opt(rest),
        "run" => cmd_run(rest),
        "analyze" => cmd_analyze(rest),
        "universe" => cmd_universe(rest),
        "dot" => cmd_dot(rest),
        "check" => cmd_check(rest),
        "serve" => cmd_serve(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown subcommand `{other}`"))),
    }
}

/// Splits flags (and their values) from the trailing file paths.
struct Parsed {
    flags: Vec<(String, String)>,
    files: Vec<String>,
}

impl Parsed {
    /// The single optional file of the one-input subcommands.
    fn single_file(&self) -> Result<Option<&str>, CliError> {
        match self.files.len() {
            0 => Ok(None),
            1 => Ok(Some(&self.files[0])),
            _ => Err(usage(format!(
                "unexpected argument `{}` (this subcommand takes one FILE)",
                self.files[1]
            ))),
        }
    }
}

/// Flags whose value is optional: `--flag` and `--flag=value` both
/// work (the bare form records an empty value).
const OPTIONAL_VALUE: &[&str] = &["validate-semantics"];

fn parse_args(
    args: &[String],
    flags_with_value: &[&str],
    bare_flags: &[&str],
) -> Result<Parsed, CliError> {
    let mut flags = Vec::new();
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let optional = |n: &str| OPTIONAL_VALUE.contains(&n) && bare_flags.contains(&n);
            if let Some((n, v)) = name.split_once('=') {
                if flags_with_value.contains(&n) || optional(n) {
                    flags.push((n.to_owned(), v.to_owned()));
                } else if bare_flags.contains(&n) {
                    return Err(usage(format!("--{n} does not take a value")));
                } else {
                    return Err(usage(format!("unknown flag --{n}")));
                }
            } else if bare_flags.contains(&name) {
                flags.push((name.to_owned(), String::new()));
            } else if flags_with_value.contains(&name) {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| usage(format!("--{name} needs a value")))?;
                flags.push((name.to_owned(), v.clone()));
            } else {
                return Err(usage(format!("unknown flag --{name}")));
            }
        } else {
            files.push(a.clone());
        }
        i += 1;
    }
    Ok(Parsed { flags, files })
}

/// Renders a parse error as `file:line:col: message` (semantic errors
/// have no position and render as `file: message`).
fn render_parse_error(display: &str, e: &pdce::ir::error::ParseError) -> String {
    if e.line == 0 {
        format!("{display}: {}", e.message)
    } else {
        format!("{display}:{}:{}: {}", e.line, e.col, e.message)
    }
}

fn load(file: Option<&str>) -> Result<Program, CliError> {
    let display = file.unwrap_or("<stdin>");
    let source = match file {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| bad_input(format!("cannot read `{path}`: {e}")))?,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| bad_input(format!("cannot read stdin: {e}")))?;
            buf
        }
    };
    parse(&source).map_err(|e| bad_input(render_parse_error(display, &e)))
}

/// Runs `f` under an explicit `--solver` choice, or under the ambient
/// selection (`SOLVER` env var / default) when none was given, and with
/// warm-start seeded re-solving disabled when `--no-incremental` was
/// passed (the ambient `INCREMENTAL` env var applies otherwise).
fn maybe_with_strategy<R>(
    strategy: Option<SolverStrategy>,
    incremental: bool,
    f: impl FnOnce() -> R,
) -> R {
    let run = || match strategy {
        Some(s) => pdce::dfa::with_strategy(s, f),
        None => f(),
    };
    if incremental {
        run()
    } else {
        pdce::dfa::with_incremental(false, run)
    }
}

/// Registry handle for the per-file latency histogram; both the
/// single-file and the batch path observe one sample per optimized file.
fn file_wall_hist() -> std::sync::Arc<pdce::metrics::Histogram> {
    use std::sync::{Arc, LazyLock};
    static HIST: LazyLock<Arc<pdce::metrics::Histogram>> = LazyLock::new(|| {
        pdce::metrics::global().histogram(
            "pdce_file_wall_ns",
            "Per-file end-to-end optimization wall time in nanoseconds",
            pdce::metrics::Stability::Timing,
            &[],
        )
    });
    Arc::clone(&HIST)
}

/// What `--metrics`, `--metrics-out`, and `--events-out` asked for, plus
/// the deterministic run id events are stamped with.
struct TelemetryOptions {
    want_metrics: bool,
    metrics_out: Option<String>,
    events_out: Option<String>,
    run_id: String,
}

impl TelemetryOptions {
    fn wants_events(&self) -> bool {
        self.events_out.is_some()
    }

    /// Writes the run-scoped registry snapshot (everything recorded since
    /// `base`) and the event log to wherever the flags pointed.
    fn emit(
        &self,
        base: &pdce::metrics::Snapshot,
        events: &pdce::metrics::events::EventLog,
    ) -> Result<(), CliError> {
        if self.want_metrics || self.metrics_out.is_some() {
            let snap = pdce::metrics::global().snapshot().since(base);
            if let Some(path) = &self.metrics_out {
                std::fs::write(path, snap.prometheus())
                    .map_err(|e| failed(format!("cannot write metrics `{path}`: {e}")))?;
                eprintln!("metrics: wrote {} series to {path}", snap.series.len());
            }
            if self.want_metrics {
                eprint!("{}", snap.human_table());
            }
        }
        if let Some(path) = &self.events_out {
            std::fs::write(path, events.to_jsonl())
                .map_err(|e| failed(format!("cannot write events `{path}`: {e}")))?;
            eprintln!("events: wrote {} event(s) to {path}", events.len());
        }
        Ok(())
    }
}

/// One `file` event for the JSONL log, attributing a file's outcome to
/// the run: what changed, which resilience rung won, and what the cache
/// and solvers did. Deliberately carries no wall-clock fields so the log
/// stays byte-identical across `--jobs` values.
fn file_event(
    path: &str,
    index: usize,
    stats: &pdce::core::driver::PdceStats,
) -> pdce::metrics::events::Event {
    pdce::metrics::events::Event::new("file")
        .field("file", path)
        .field("index", index)
        .field("rounds", stats.rounds)
        .field("eliminated", stats.eliminated_assignments)
        .field("sunk", stats.sunk_assignments)
        .field("inserted", stats.inserted_assignments)
        .field("rung", stats.degraded.map_or("none", |m| m.label()))
        .field("tv_checks", stats.tv_checks)
        .field("tv_rollbacks", stats.tv_rollbacks)
        .field("rollbacks", stats.rollbacks)
        .field("budget_exhaustions", stats.budget_exhaustions)
        .field("cache_hits", stats.cache.hits())
        .field("cache_misses", stats.cache.misses())
        .field("cfg_relayouts", stats.cache.cfg_relayouts)
        .field("pops", stats.solver.pops())
        .field("seeded_pops", stats.solver.seeded_pops)
        .field("word_ops", stats.solver.word_ops)
}

fn cmd_opt(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(
        args,
        &[
            "mode",
            "passes",
            "region",
            "max-rounds",
            "trace",
            "solver",
            "jobs",
            "max-pops",
            "wall-ms",
            "metrics-out",
            "events-out",
        ],
        &[
            "stats",
            "verify",
            "simplify",
            "explain",
            "no-incremental",
            "validate-semantics",
            "metrics",
        ],
    )?;
    // Baseline snapshot scoping every telemetry exposition to this run
    // (relevant in-process; from a fresh CLI process it is all zeros).
    let metrics_base = pdce::metrics::global().snapshot();
    let mut config = PdceConfig::pde();
    let mut passes_spec: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut strategy: Option<SolverStrategy> = None;
    let mut jobs = 1usize;
    let mut want_stats = false;
    let mut want_verify = false;
    let mut want_simplify = false;
    let mut want_explain = false;
    let mut incremental = true;
    let mut budget = pdce::trace::budget::Budget::UNLIMITED;
    let mut validate: Option<u32> = None;
    let mut want_metrics = false;
    let mut metrics_out: Option<String> = None;
    let mut events_out: Option<String> = None;
    for (name, value) in &parsed.flags {
        match name.as_str() {
            "passes" => passes_spec = Some(value.clone()),
            "mode" => {
                config = match value.as_str() {
                    "pde" => PdceConfig::pde(),
                    "pfe" => PdceConfig::pfe(),
                    "dce" => PdceConfig::dce_only(),
                    "fce" => PdceConfig::fce_only(),
                    other => return Err(usage(format!("unknown mode `{other}`"))),
                };
            }
            "region" => {
                config = config.with_region(value.split(',').map(str::trim));
            }
            "max-rounds" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| usage(format!("bad --max-rounds `{value}`")))?;
                config = config.truncating_after(n);
            }
            "trace" => trace_path = Some(value.clone()),
            "solver" => {
                strategy = Some(SolverStrategy::parse(value).ok_or_else(|| {
                    usage(format!(
                        "unknown solver `{value}` (expected fifo, priority, or sparse)"
                    ))
                })?);
            }
            "jobs" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| usage(format!("bad --jobs `{value}`")))?;
                jobs = if n == 0 { pdce::par::default_jobs() } else { n };
            }
            "max-pops" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| usage(format!("bad --max-pops `{value}`")))?;
                budget.max_pops = Some(n);
            }
            "wall-ms" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| usage(format!("bad --wall-ms `{value}`")))?;
                budget.wall_time = Some(std::time::Duration::from_millis(n));
            }
            "validate-semantics" => {
                validate = Some(if value.is_empty() {
                    8
                } else {
                    value
                        .parse()
                        .map_err(|_| usage(format!("bad --validate-semantics `{value}`")))?
                });
            }
            "stats" => want_stats = true,
            "verify" => want_verify = true,
            "simplify" => want_simplify = true,
            "explain" => want_explain = true,
            "no-incremental" => incremental = false,
            "metrics" => want_metrics = true,
            "metrics-out" => metrics_out = Some(value.clone()),
            "events-out" => events_out = Some(value.clone()),
            _ => unreachable!(),
        }
    }
    // Applied after the loop so they survive a later `--mode` rebuild.
    config = config.with_budget(budget);
    if let Some(k) = validate {
        config = config.with_validation(k);
    }
    // The run id hashes the logical request — flags and files — but not
    // the flags that vary without changing the work (`--jobs`, output
    // paths), so event logs from equivalent runs carry the same id.
    let run_id = pdce::metrics::events::run_id(
        std::iter::once("opt")
            .chain(
                parsed
                    .flags
                    .iter()
                    .filter(|(n, _)| {
                        !matches!(n.as_str(), "jobs" | "trace" | "metrics-out" | "events-out")
                    })
                    .flat_map(|(n, v)| [n.as_str(), v.as_str()]),
            )
            .chain(parsed.files.iter().map(String::as_str)),
    );
    let telemetry = TelemetryOptions {
        want_metrics,
        metrics_out,
        events_out,
        run_id,
    };
    if parsed.files.len() > 1 {
        if passes_spec.is_some() {
            return Err(usage("--passes is single-file only"));
        }
        return cmd_opt_batch(&BatchOptions {
            files: &parsed.files,
            config: &config,
            strategy,
            jobs,
            trace_path: trace_path.as_deref(),
            want_stats,
            want_verify,
            want_simplify,
            want_explain,
            incremental,
            telemetry: &telemetry,
            metrics_base: &metrics_base,
        });
    }
    let display = parsed.single_file()?.unwrap_or("<stdin>").to_string();
    let original = load(parsed.single_file()?)?;
    let mut prog = original.clone();
    let mut events = pdce::metrics::events::EventLog::new(telemetry.run_id.clone());
    if telemetry.wants_events() {
        events.record(pdce::metrics::events::Event::new("run").field("files", 1usize));
    }
    let file_start = std::time::Instant::now();
    let collector = (trace_path.is_some() || want_explain)
        .then(|| std::rc::Rc::new(pdce::trace::Collector::new()));
    {
        // Tracing covers exactly the optimization (the exporters below
        // run after the guard drops, so they don't trace themselves).
        let _guard = collector
            .as_ref()
            .map(|c| pdce::trace::install(c.clone() as std::rc::Rc<dyn pdce::trace::Tracer>));
        if let Some(spec) = &passes_spec {
            if parsed
                .flags
                .iter()
                .any(|(n, _)| n == "mode" || n == "region" || n == "max-rounds")
            {
                return Err(usage("--passes replaces --mode/--region/--max-rounds"));
            }
            let pipeline = pdce::pass::Pipeline::parse(spec).map_err(|e| usage(e.to_string()))?;
            let report = maybe_with_strategy(strategy, incremental, || pipeline.run(&mut prog));
            if telemetry.wants_events() {
                for m in &report.passes {
                    events.record(
                        pdce::metrics::events::Event::new("pass")
                            .field("file", display.as_str())
                            .field("pass", m.name.as_str())
                            .field("runs", m.runs)
                            .field("changed_runs", m.changed_runs)
                            .field("removed", m.removed)
                            .field("inserted", m.inserted)
                            .field("rewritten", m.rewritten),
                    );
                }
            }
            if want_simplify {
                pdce::ir::simplify_cfg(&mut prog);
            }
            print!("{}", print_program(&prog));
            for failure in &report.failures {
                eprintln!("warning: {failure}");
            }
            if want_stats {
                eprint!("{}", report.render());
                eprintln!(
                    "cache:       {} hit(s), {} miss(es)",
                    report.cache.hits(),
                    report.cache.misses()
                );
                if report.rollbacks > 0 {
                    eprintln!("rollbacks:   {}", report.rollbacks);
                }
            }
        } else {
            let stats = maybe_with_strategy(strategy, incremental, || {
                optimize_resilient(&mut prog, &config)
            });
            if telemetry.wants_events() {
                events.record(file_event(&display, 0, &stats));
            }
            for note in &stats.failure_log {
                eprintln!("warning: {note}");
            }
            if want_simplify {
                let s = pdce::ir::simplify_cfg(&mut prog);
                if want_stats {
                    eprintln!(
                        "simplify:    {} forwarded, {} merged, {} removed",
                        s.forwarded, s.merged, s.removed
                    );
                }
            }
            print!("{}", print_program(&prog));
            if want_stats {
                eprintln!("rounds:      {}", stats.rounds);
                eprintln!("eliminated:  {}", stats.eliminated_assignments);
                eprintln!("sunk:        {}", stats.sunk_assignments);
                eprintln!("inserted:    {}", stats.inserted_assignments);
                eprintln!("synthetic:   {}", stats.synthetic_blocks);
                eprintln!("growth ω:    {:.2}", stats.growth_factor());
                eprintln!(
                    "cache:       {} rebuild(s) avoided, {} rebuild(s) paid",
                    stats.cache.hits(),
                    stats.cache.misses()
                );
                eprintln!(
                    "solver:      {} problem(s), {} evaluation(s), {} word op(s)",
                    stats.solver.problems, stats.solver.evaluations, stats.solver.word_ops
                );
                eprintln!(
                    "pops:        {} fifo, {} priority, {} seeded, {} sparse ({} edge visit(s))",
                    stats.solver.fifo_pops,
                    stats.solver.priority_pops,
                    stats.solver.seeded_pops,
                    stats.solver.sparse_pops,
                    stats.solver.sparse_edge_visits
                );
                eprintln!(
                    "solves:      {} cold, {} warm",
                    stats.solver.cold_solves, stats.solver.warm_solves
                );
                if stats.truncated {
                    eprintln!("truncated:   yes");
                }
                if stats.rollbacks > 0 || stats.degradations > 0 || stats.budget_exhaustions > 0 {
                    eprintln!(
                        "resilience:  {} rollback(s), {} degradation(s), {} budget exhaustion(s)",
                        stats.rollbacks, stats.degradations, stats.budget_exhaustions
                    );
                }
                if stats.tv_checks > 0 {
                    eprintln!(
                        "validated:   {} tv check(s), {} tv rollback(s)",
                        stats.tv_checks, stats.tv_rollbacks
                    );
                }
                if let Some(mode) = stats.degraded {
                    eprintln!("degraded:    {}", mode.label());
                }
            }
        }
    }
    file_wall_hist().observe(file_start.elapsed().as_nanos() as u64);
    if let Some(c) = &collector {
        if let Some(path) = &trace_path {
            let json = pdce::trace::chrome::chrome_trace(
                &c.events(),
                &pdce::trace::chrome::ChromeOptions::wall(),
            );
            std::fs::write(path, json)
                .map_err(|e| failed(format!("cannot write trace `{path}`: {e}")))?;
            eprintln!(
                "trace: wrote {} event(s) to {path} (open in chrome://tracing or ui.perfetto.dev)",
                c.len()
            );
        }
        if want_explain {
            eprint!(
                "{}",
                pdce::trace::explain::render_with_solver(
                    &c.provenance(),
                    &pdce::trace::solver_totals()
                )
            );
        }
    }
    telemetry.emit(&metrics_base, &events)?;
    if want_verify {
        let report = check_improvement(&original, &prog, &BetterOptions::default());
        if !report.holds() {
            return Err(failed("internal error: result does not dominate the input"));
        }
        eprintln!(
            "verified: dominates the input on {} path(s) ({})",
            report.paths_checked,
            if report.exact { "exact" } else { "sampled" }
        );
    }
    Ok(())
}

/// Everything the multi-file batch path needs from `cmd_opt`.
struct BatchOptions<'a> {
    files: &'a [String],
    config: &'a PdceConfig,
    strategy: Option<SolverStrategy>,
    jobs: usize,
    trace_path: Option<&'a str>,
    want_stats: bool,
    want_verify: bool,
    want_simplify: bool,
    want_explain: bool,
    incremental: bool,
    telemetry: &'a TelemetryOptions,
    metrics_base: &'a pdce::metrics::Snapshot,
}

/// Per-file result of a batch worker.
struct FileReport {
    output: String,
    stats: pdce::core::driver::PdceStats,
    /// Degradations, rollbacks, and TV notes, echoed as warnings.
    warnings: Vec<String>,
}

/// Per-file failure of a batch worker. `bad_input` separates the
/// user's fault (unreadable or unparseable file, exit 1) from ours
/// (internal error or worker panic, exit 2); the message is
/// self-contained and already names the file.
struct FileError {
    bad_input: bool,
    message: String,
}

/// `pdce opt FILE FILE...`: optimizes independent programs, sharded
/// over `--jobs` workers, and prints them in argument order with a
/// `// ==== <file> ====` header each. Every worker runs with its own
/// trace collector; the buffers are merged in file order (never
/// completion order) so `--trace` output is byte-stable for a fixed
/// input list regardless of worker count. A file that fails to read,
/// parse, or verify produces a diagnostic naming it — never a panic —
/// and does not stop the other files.
fn cmd_opt_batch(opts: &BatchOptions) -> Result<(), CliError> {
    use pdce::trace::{merge_collected, Collected};

    let want_collect = opts.trace_path.is_some() || opts.want_explain;
    // try_map_indexed sandboxes every file: a panicking worker item
    // becomes a per-file error while its siblings still run to
    // completion (and no partial batch is ever discarded).
    let outcomes: Vec<(Result<FileReport, FileError>, Option<Collected>)> =
        pdce::par::try_map_indexed(opts.jobs, opts.files, |_, path| {
            let collector = want_collect.then(|| std::rc::Rc::new(pdce::trace::Collector::new()));
            let file_start = std::time::Instant::now();
            let result = {
                let _guard = collector.as_ref().map(|c| {
                    pdce::trace::install(c.clone() as std::rc::Rc<dyn pdce::trace::Tracer>)
                });
                maybe_with_strategy(opts.strategy, opts.incremental, || {
                    optimize_one_file(path, opts.config, opts.want_simplify, opts.want_verify)
                })
            };
            file_wall_hist().observe(file_start.elapsed().as_nanos() as u64);
            let collected = collector.as_ref().map(|c| Collected::from_collector(c));
            (result, collected)
        })
        .into_iter()
        .zip(opts.files)
        .map(|(item, path)| match item {
            Ok(outcome) => outcome,
            Err(p) => (
                Err(FileError {
                    bad_input: false,
                    message: format!("{path}: worker panicked: {}", p.message),
                }),
                None,
            ),
        })
        .collect();

    let mut errors = 0usize;
    let mut all_bad_input = true;
    let mut totals = pdce::trace::SolverStats::ZERO;
    let mut total_eliminated = 0u64;
    for (path, (result, _)) in opts.files.iter().zip(&outcomes) {
        match result {
            Ok(report) => {
                println!("// ==== {path} ====");
                print!("{}", report.output);
                for note in &report.warnings {
                    eprintln!("warning: {path}: {note}");
                }
                if opts.want_stats {
                    let degraded = match report.stats.degraded {
                        Some(mode) => format!(", degraded to {}", mode.label()),
                        None => String::new(),
                    };
                    eprintln!(
                        "{path}: rounds {}, eliminated {}, sunk {}, {} solver problem(s){degraded}",
                        report.stats.rounds,
                        report.stats.eliminated_assignments,
                        report.stats.sunk_assignments,
                        report.stats.solver.problems
                    );
                    totals.add(&report.stats.solver);
                    total_eliminated += report.stats.eliminated_assignments;
                }
            }
            Err(e) => {
                errors += 1;
                all_bad_input &= e.bad_input;
                eprintln!("error: {}", e.message);
            }
        }
    }
    if opts.want_stats {
        eprintln!(
            "total:       {} file(s), {} eliminated, {} solver problem(s), \
             {} fifo pop(s), {} priority pop(s), {} sparse pop(s)",
            opts.files.len() - errors,
            total_eliminated,
            totals.problems,
            totals.fifo_pops,
            totals.priority_pops,
            totals.sparse_pops
        );
    }
    // One event per file, in argument order — the same merge rule as
    // traces — so the log's bytes are independent of `--jobs`.
    let mut events = pdce::metrics::events::EventLog::new(opts.telemetry.run_id.clone());
    if opts.telemetry.wants_events() {
        events.record(pdce::metrics::events::Event::new("run").field("files", opts.files.len()));
        for (index, (path, (result, _))) in opts.files.iter().zip(&outcomes).enumerate() {
            match result {
                Ok(report) => events.record(file_event(path, index, &report.stats)),
                Err(e) => events.record(
                    pdce::metrics::events::Event::new("file")
                        .field("file", path.as_str())
                        .field("index", index)
                        .field("error", e.message.as_str()),
                ),
            }
        }
    }
    if opts.want_explain {
        // Explain sections come out in argument file order, one per
        // file, each rendered against that file's own solver totals.
        // (Workers accumulate `solver_totals()` thread-locally, so the
        // main thread's totals are empty under --jobs N; the per-file
        // stats carried in the report are the correct source.)
        for (path, (result, collected)) in opts.files.iter().zip(&outcomes) {
            eprintln!("// ==== {path} ====");
            match result {
                Ok(report) => {
                    let provenance = collected
                        .as_ref()
                        .map(|c| c.provenance.as_slice())
                        .unwrap_or(&[]);
                    eprint!(
                        "{}",
                        pdce::trace::explain::render_with_solver(provenance, &report.stats.solver)
                    );
                }
                Err(_) => eprintln!("file failed; no provenance"),
            }
        }
    }
    if want_collect {
        let merged = merge_collected(
            outcomes
                .into_iter()
                .filter_map(|(_, collected)| collected)
                .collect(),
        );
        if let Some(path) = opts.trace_path {
            // The logical clock makes the merged trace byte-stable for a
            // fixed file list, independent of worker count or scheduling.
            let json = pdce::trace::chrome::chrome_trace(
                &merged.events,
                &pdce::trace::chrome::ChromeOptions::logical(),
            );
            std::fs::write(path, json)
                .map_err(|e| failed(format!("cannot write trace `{path}`: {e}")))?;
            eprintln!(
                "trace: wrote {} event(s) to {path} (open in chrome://tracing or ui.perfetto.dev)",
                merged.events.len()
            );
        }
    }
    opts.telemetry.emit(opts.metrics_base, &events)?;
    if errors > 0 {
        let msg = format!("{errors} of {} file(s) failed", opts.files.len());
        return Err(if all_bad_input {
            bad_input(msg)
        } else {
            failed(msg)
        });
    }
    Ok(())
}

/// Reads, optimizes, and prints one batch file; all failure modes come
/// back as a clean, file-naming message — never a panic.
fn optimize_one_file(
    path: &str,
    config: &PdceConfig,
    want_simplify: bool,
    want_verify: bool,
) -> Result<FileReport, FileError> {
    let user_fault = |message: String| FileError {
        bad_input: true,
        message,
    };
    let our_fault = |message: String| FileError {
        bad_input: false,
        message,
    };
    let source = std::fs::read_to_string(path)
        .map_err(|e| user_fault(format!("cannot read `{path}`: {e}")))?;
    let original = parse(&source).map_err(|e| user_fault(render_parse_error(path, &e)))?;
    let mut prog = original.clone();
    let stats = optimize_resilient(&mut prog, config);
    let warnings = stats.failure_log.clone();
    if want_simplify {
        pdce::ir::simplify_cfg(&mut prog);
    }
    if want_verify {
        let report = check_improvement(&original, &prog, &BetterOptions::default());
        if !report.holds() {
            return Err(our_fault(format!(
                "{path}: internal error: result does not dominate the input"
            )));
        }
    }
    Ok(FileReport {
        output: print_program(&prog),
        stats,
        warnings,
    })
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args, &["in", "seed", "fuel"], &[])?;
    let prog = load(parsed.single_file()?)?;
    let mut env = Env::zeroed(&prog);
    let mut seed = 0u64;
    let mut fuel = 100_000u64;
    for (name, value) in &parsed.flags {
        match name.as_str() {
            "in" => {
                let (var, val) = value
                    .split_once('=')
                    .ok_or_else(|| usage(format!("--in wants name=value, got `{value}`")))?;
                let val: i64 = val
                    .parse()
                    .map_err(|_| usage(format!("bad value in `--in {value}`")))?;
                match prog.vars().lookup(var) {
                    Some(v) => env.set(v, val),
                    None => eprintln!("warning: variable `{var}` does not occur; ignored"),
                }
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| usage(format!("bad --seed `{value}`")))?;
            }
            "fuel" => {
                fuel = value
                    .parse()
                    .map_err(|_| usage(format!("bad --fuel `{value}`")))?;
            }
            _ => unreachable!(),
        }
    }
    let mut oracle = SeededOracle::new(seed);
    let trace = run(
        &prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: fuel,
        },
    );
    for value in &trace.outputs {
        println!("{value}");
    }
    eprintln!(
        "executed {} statement(s), {} assignment(s); {}",
        trace.executed_stmts,
        trace.executed_assignments,
        if trace.completed {
            "halted"
        } else {
            "fuel exhausted"
        }
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args, &[], &[])?;
    let prog = load(parsed.single_file()?)?;
    let view = CfgView::new(&prog);
    let dead = pdce::core::DeadSolution::compute(&prog, &view);
    let faint = pdce::core::FaintSolution::compute(&prog, &view);
    let table = pdce::core::PatternTable::build(&prog);
    let local = pdce::core::LocalInfo::compute(&prog, &table);
    let delay = pdce::core::DelayInfo::compute(&prog, &view, &table, &local);

    println!("patterns:");
    for i in 0..table.len() {
        println!("  [{i}] {}", table.key(i));
    }
    for n in prog.node_ids() {
        let block = prog.block(n);
        println!("\nblock {}:", block.name);
        let dead_after = dead.after_each_stmt(&prog, n);
        for (k, stmt) in block.stmts.iter().enumerate() {
            let mut facts = Vec::new();
            if let Some(lhs) = stmt.modified() {
                if dead_after[k].get(lhs.index()) {
                    facts.push("lhs dead after");
                } else if faint.faint_after(n, k, lhs) {
                    facts.push("lhs faint after");
                }
            }
            if local.candidates_of(n).iter().any(|&(ck, _)| ck == k) {
                facts.push("sinking candidate");
            }
            let suffix = if facts.is_empty() {
                String::new()
            } else {
                format!("   ; {}", facts.join(", "))
            };
            println!("  {}{}", print_stmt(&prog, stmt), suffix);
        }
        let fmt_bits = |bits: &pdce::dfa::BitVec| -> String {
            let names: Vec<String> = bits.iter_ones().map(|i| table.key(i).to_string()).collect();
            if names.is_empty() {
                "∅".to_owned()
            } else {
                names.join(" | ")
            }
        };
        println!("  N-DELAYED: {}", fmt_bits(&delay.n_delayed[n.index()]));
        println!("  X-DELAYED: {}", fmt_bits(&delay.x_delayed[n.index()]));
        println!("  N-INSERT:  {}", fmt_bits(&delay.n_insert[n.index()]));
        println!("  X-INSERT:  {}", fmt_bits(&delay.x_insert[n.index()]));
    }
    Ok(())
}

/// Theorem 5.2 on demand: enumerate the bounded transformation universe
/// of the (split) input and verify the driver's output dominates every
/// member.
fn cmd_universe(args: &[String]) -> Result<(), CliError> {
    use pdce::core::universe::{assert_optimal_on_universe, UniverseOptions};
    let parsed = parse_args(args, &["mode", "max"], &[])?;
    let mut mode = pdce::core::Mode::Dead;
    let mut max_programs = 2000usize;
    for (name, value) in &parsed.flags {
        match name.as_str() {
            "mode" => {
                mode = match value.as_str() {
                    "pde" => pdce::core::Mode::Dead,
                    "pfe" => pdce::core::Mode::Faint,
                    other => return Err(usage(format!("unknown mode `{other}`"))),
                };
            }
            "max" => {
                max_programs = value
                    .parse()
                    .map_err(|_| usage(format!("bad --max `{value}`")))?;
            }
            _ => unreachable!(),
        }
    }
    let mut start = load(parsed.single_file()?)?;
    pdce::ir::edgesplit::split_critical_edges(&mut start);
    let mut optimized = start.clone();
    let config = match mode {
        pdce::core::Mode::Dead => PdceConfig::pde(),
        pdce::core::Mode::Faint => PdceConfig::pfe(),
    };
    optimize(&mut optimized, &config).map_err(failed)?;
    let opts = UniverseOptions {
        mode,
        max_programs,
        better: BetterOptions::default(),
    };
    match assert_optimal_on_universe(&start, &optimized, &opts) {
        Ok(check) => {
            println!(
                "optimal: dominates all {} reachable program(s){}",
                check.programs_checked,
                if check.truncated {
                    " (exploration truncated at --max)"
                } else {
                    ""
                }
            );
            Ok(())
        }
        Err(v) => Err(failed(format!(
            "NOT optimal — beaten by:\n{}",
            v.competitor
        ))),
    }
}

fn cmd_dot(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args, &[], &[])?;
    let prog = load(parsed.single_file()?)?;
    print!("{}", pdce::ir::dot::to_dot(&prog, "pdce"));
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(args, &[], &[])?;
    let prog = load(parsed.single_file()?)?;
    println!(
        "ok: {} block(s), {} statement(s), {} variable(s), {}",
        prog.num_blocks(),
        prog.num_stmts(),
        prog.num_vars(),
        if CfgView::new(&prog).is_reducible() {
            "reducible"
        } else {
            "irreducible"
        }
    );
    Ok(())
}

/// `pdce serve`: the long-lived optimization service. Requests arrive
/// as newline-delimited JSON on stdin (or a TCP/Unix socket) and every
/// line is answered — the per-request `status` field reuses the CLI
/// exit-code taxonomy, so one hostile request degrades or errors alone
/// instead of taking the daemon down.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_args(
        args,
        &[
            "tcp",
            "unix",
            "jobs",
            "solver",
            "max-rounds",
            "max-pops",
            "wall-ms",
            "cache",
            "cache-bytes",
            "fsync-every",
            "max-strikes",
            "retry-backoff-ms",
            "watchdog-soft-ms",
            "watchdog-hard-ms",
            "max-request-bytes",
            "metrics-out",
        ],
        &["no-incremental", "validate-semantics", "no-cache"],
    )?;
    if let Some(extra) = parsed.files.first() {
        return Err(usage(format!(
            "unexpected argument `{extra}` (serve reads requests from its socket or stdin)"
        )));
    }
    let metrics_base = pdce::metrics::global().snapshot();
    let mut opts = pdce::serve::ServeOptions::default();
    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let parse_u64 = |name: &str, value: &str| -> Result<u64, CliError> {
        value
            .parse()
            .map_err(|_| usage(format!("bad --{name} `{value}`")))
    };
    for (name, value) in &parsed.flags {
        match name.as_str() {
            "tcp" => tcp = Some(value.clone()),
            "unix" => unix = Some(value.clone()),
            "jobs" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| usage(format!("bad --jobs `{value}`")))?;
                opts.jobs = if n == 0 { pdce::par::default_jobs() } else { n };
            }
            "solver" => {
                opts.strategy = Some(SolverStrategy::parse(value).ok_or_else(|| {
                    usage(format!(
                        "unknown solver `{value}` (expected fifo, priority, or sparse)"
                    ))
                })?);
            }
            "max-rounds" => opts.max_rounds = Some(parse_u64(name, value)?),
            "max-pops" => opts.max_pops = Some(parse_u64(name, value)?),
            "wall-ms" => opts.wall_ms = Some(parse_u64(name, value)?),
            "validate-semantics" => {
                opts.validate = Some(if value.is_empty() {
                    8
                } else {
                    value
                        .parse()
                        .map_err(|_| usage(format!("bad --validate-semantics `{value}`")))?
                });
            }
            "cache" => opts.cache_path = Some(value.into()),
            "cache-bytes" => opts.cache_bytes = parse_u64(name, value)?,
            "fsync-every" => opts.wal_fsync_every = parse_u64(name, value)?,
            "max-strikes" => {
                opts.max_strikes = u32::try_from(parse_u64(name, value)?)
                    .map_err(|_| usage(format!("bad --max-strikes `{value}`")))?;
            }
            "retry-backoff-ms" => opts.retry_backoff_ms = parse_u64(name, value)?,
            "watchdog-soft-ms" => opts.watchdog_soft_ms = Some(parse_u64(name, value)?),
            "watchdog-hard-ms" => opts.watchdog_hard_ms = Some(parse_u64(name, value)?),
            "max-request-bytes" => {
                opts.max_request_bytes = parse_u64(name, value)? as usize;
            }
            "no-cache" => opts.cache = false,
            "no-incremental" => opts.incremental = false,
            "metrics-out" => metrics_out = Some(value.clone()),
            _ => unreachable!(),
        }
    }
    if tcp.is_some() && unix.is_some() {
        return Err(usage("--tcp and --unix are mutually exclusive"));
    }
    let server = std::sync::Arc::new(pdce::serve::Server::new(opts));
    let report = server.cache_load_report();
    if report.loaded > 0 || report.skipped > 0 {
        eprintln!(
            "serve: cache loaded {} entr{} ({} corrupt line(s) skipped)",
            report.loaded,
            if report.loaded == 1 { "y" } else { "ies" },
            report.skipped
        );
    }
    let summary = if let Some(addr) = tcp {
        let listener = std::net::TcpListener::bind(&addr)
            .map_err(|e| failed(format!("cannot bind tcp `{addr}`: {e}")))?;
        eprintln!(
            "serve: listening on tcp {}",
            listener.local_addr().map_err(failed)?
        );
        server.serve_tcp(listener).map_err(failed)?
    } else if let Some(path) = unix {
        // A leftover socket file from a crashed server must be cleared
        // before bind, but blindly unlinking would silently evict a
        // *live* server. Probe with a connect: refused/absent means the
        // file is stale and safe to remove.
        if std::fs::symlink_metadata(&path).is_ok() {
            match std::os::unix::net::UnixStream::connect(&path) {
                Ok(_) => {
                    return Err(failed(format!(
                        "unix socket `{path}` is in use by a live server"
                    )));
                }
                Err(_) => {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        let listener = std::os::unix::net::UnixListener::bind(&path)
            .map_err(|e| failed(format!("cannot bind unix socket `{path}`: {e}")))?;
        eprintln!("serve: listening on unix {path}");
        let summary = server.serve_unix(listener).map_err(failed)?;
        let _ = std::fs::remove_file(&path);
        summary
    } else {
        server
            .serve(std::io::stdin(), std::io::stdout().lock())
            .map_err(failed)?
    };
    if let Some(path) = &metrics_out {
        let snap = pdce::metrics::global().snapshot().since(&metrics_base);
        std::fs::write(path, snap.prometheus())
            .map_err(|e| failed(format!("cannot write metrics `{path}`: {e}")))?;
        eprintln!("metrics: wrote {} series to {path}", snap.series.len());
    }
    eprintln!(
        "serve: {} request(s) ({} ok, {} bad, {} internal), cache {} hit(s) / {} miss(es), {}",
        summary.requests,
        summary.ok,
        summary.bad_input,
        summary.internal,
        summary.cache_hits,
        summary.cache_misses,
        if summary.shutdown { "shutdown" } else { "eof" }
    );
    Ok(())
}
