//! Facade crate for the PDCE reproduction workspace.
//!
//! Re-exports the public API of every subsystem so examples and
//! integration tests can use a single dependency:
//!
//! * [`ir`] — flow-graph IR, parser, printer, interpreter, paths
//! * [`dfa`] — bit-vector data-flow framework
//! * [`core`] — partial dead/faint code elimination (the paper's algorithm)
//! * [`baselines`] — DCE variants, naive sinking, copy propagation
//! * [`lcm`] — lazy code motion (partial redundancy elimination)
//! * [`ssa`] — SSA form (Cytron et al.) and sparse SSA-based DCE
//! * [`pass`] — the unified pass pipeline: registry, spec parser,
//!   per-pass instrumentation, shared analysis cache
//! * [`progen`] — random program generators
//! * [`serve`] — optimization-as-a-service: newline-delimited JSON
//!   protocol, budget admission control, persistent result cache
//! * [`trace`] — structured tracing: span/event collector, solver
//!   telemetry, transformation provenance, Chrome-trace and `--explain`
//!   exporters
//! * [`metrics`] — always-on metrics plane: lock-free registry of
//!   counters/gauges/log2 histograms, Prometheus exposition, JSONL event
//!   log, optional counting allocator (`--features alloc-metrics`)
//!
//! # Quickstart
//!
//! ```
//! use pdce::ir::parser::parse;
//! use pdce::core::driver::{optimize, PdceConfig};
//!
//! let mut prog = parse(
//!     "prog {
//!        block s  { goto n1 }
//!        block n1 { y := a + b; nondet n2 n3 }
//!        block n2 { y := 4; goto n4 }
//!        block n3 { goto n4 }
//!        block n4 { out(y); goto e }
//!        block e  { halt }
//!      }",
//! )?;
//! let stats = optimize(&mut prog, &PdceConfig::pde())?;
//! assert!(stats.eliminated_assignments > 0 || stats.sunk_assignments > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Or compose any of the workspace's transforms through the pipeline:
//!
//! ```
//! use pdce::ir::parser::parse;
//! use pdce::pass::Pipeline;
//!
//! let mut prog = parse(
//!     "prog {
//!        block s  { x := a + b; y := x; out(y); goto e }
//!        block e  { halt }
//!      }",
//! )?;
//! let report = Pipeline::parse("copyprop,repeat(dce,sink)")?.run(&mut prog);
//! assert!(report.outcome.changed);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// With `--features alloc-metrics`, route every allocation in this crate's
// binaries and tests through the counting allocator so the per-pass
// allocation histograms carry real data.
#[cfg(feature = "alloc-metrics")]
#[global_allocator]
static COUNTING_ALLOC: pdce_metrics::alloc::CountingAlloc = pdce_metrics::alloc::CountingAlloc;

pub use pdce_baselines as baselines;
pub use pdce_core as core;
pub use pdce_dfa as dfa;
pub use pdce_ir as ir;
pub use pdce_lcm as lcm;
pub use pdce_metrics as metrics;
pub use pdce_par as par;
pub use pdce_pass as pass;
pub use pdce_progen as progen;
pub use pdce_serve as serve;
pub use pdce_ssa as ssa;
pub use pdce_trace as trace;
