//! Cross-validation of independent implementations.
//!
//! * The core dead-variable analysis (Table 1) against the baseline
//!   live-variable analysis: iterated DCE must produce identical
//!   programs.
//! * Faint code elimination (slotwise, Table 1) against def-use-chain
//!   marking DCE (Section 5.2's "standard method"): the paper notes the
//!   optimistic marking detects exactly the faint assignments.

use pdce::baselines::{duchain_dce, liveness_dce};
use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::printer::{canonical_string, structural_eq};
use pdce::progen::{structured, tangled, GenConfig};
use pdce::ssa::ssa_dce;

fn config(seed: u64) -> GenConfig {
    GenConfig {
        seed,
        target_blocks: 20,
        num_vars: 5,
        stmts_per_block: (1, 4),
        out_prob: 0.2,
        loop_prob: 0.35,
        max_depth: 3,
        expr_depth: 2,
        nondet: true,
    }
}

#[test]
fn liveness_dce_equals_core_dce_on_random_programs() {
    for seed in 0..60u64 {
        let p = structured(&config(seed));
        let mut a = p.clone();
        liveness_dce(&mut a);
        let mut b = p.clone();
        optimize(&mut b, &PdceConfig::dce_only()).unwrap();
        assert!(
            structural_eq(&a, &b),
            "seed {seed}:\nliveness:\n{}\ncore dce:\n{}",
            canonical_string(&a),
            canonical_string(&b)
        );
    }
}

#[test]
fn duchain_marking_equals_fce_on_random_programs() {
    for seed in 0..60u64 {
        let p = structured(&config(seed.wrapping_mul(31)));
        let mut a = p.clone();
        duchain_dce(&mut a);
        let mut b = p.clone();
        optimize(&mut b, &PdceConfig::fce_only()).unwrap();
        assert!(
            structural_eq(&a, &b),
            "seed {seed}:\ndu-chain:\n{}\nfce:\n{}",
            canonical_string(&a),
            canonical_string(&b)
        );
    }
}

#[test]
fn agreement_extends_to_irreducible_graphs() {
    for seed in 0..30u64 {
        let p = tangled(&config(seed), 6);
        let mut a = p.clone();
        duchain_dce(&mut a);
        let mut b = p.clone();
        optimize(&mut b, &PdceConfig::fce_only()).unwrap();
        assert!(
            structural_eq(&a, &b),
            "seed {seed}:\ndu-chain:\n{}\nfce:\n{}",
            canonical_string(&a),
            canonical_string(&b)
        );

        let mut a = p.clone();
        liveness_dce(&mut a);
        let mut b = p.clone();
        optimize(&mut b, &PdceConfig::dce_only()).unwrap();
        assert!(structural_eq(&a, &b), "seed {seed} (liveness)");
    }
}

/// Sparse SSA-based DCE (Cytron et al., the §5.2 comparison point) is a
/// third independent implementation of faint-code elimination: its
/// removal set must coincide with fce and with du-chain marking.
#[test]
fn ssa_dce_equals_fce_on_random_programs() {
    for seed in 0..60u64 {
        let p = structured(&config(seed.wrapping_mul(77)));
        let mut a = p.clone();
        ssa_dce(&mut a);
        let mut b = p.clone();
        optimize(&mut b, &PdceConfig::fce_only()).unwrap();
        assert!(
            structural_eq(&a, &b),
            "seed {seed}:\nssa-dce:\n{}\nfce:\n{}",
            canonical_string(&a),
            canonical_string(&b)
        );
    }
    // Including irreducible graphs (dominance handles them fine).
    for seed in 0..30u64 {
        let p = tangled(&config(seed ^ 0x55), 6);
        let mut a = p.clone();
        ssa_dce(&mut a);
        let mut b = p.clone();
        optimize(&mut b, &PdceConfig::fce_only()).unwrap();
        assert!(structural_eq(&a, &b), "tangled seed {seed}");
    }
}

/// The inclusion chain of removal power: dce ⊆ fce pointwise (every
/// program dce can strip, fce strips at least as much).
#[test]
fn fce_removes_at_least_as_much_as_dce() {
    for seed in 0..40u64 {
        let p = structured(&config(seed ^ 0xabc));
        let mut with_dce = p.clone();
        optimize(&mut with_dce, &PdceConfig::dce_only()).unwrap();
        let mut with_fce = p.clone();
        optimize(&mut with_fce, &PdceConfig::fce_only()).unwrap();
        assert!(
            with_fce.num_assignments() <= with_dce.num_assignments(),
            "seed {seed}"
        );
    }
}
