//! Cross-layer `CfgView` guarantees.
//!
//! Every analysis layer (the worklist solvers in `pdce-dfa`, the
//! dominance machinery in `pdce-ssa`, the faint network in `pdce-core`)
//! now consumes its traversal orders from the one revision-cached
//! [`CfgView`] instead of recomputing private DFS orders. These tests
//! pin the two properties that refactor rests on:
//!
//! 1. the view's orders equal the reference DFS orders every consumer
//!    used to compute privately (200 generator-seeded CFGs, reducible
//!    and irreducible), and
//! 2. any sequence of program mutations — statement-local edits,
//!    conservative interior edits, block additions, edge splits, and
//!    whole-graph rewrites — leaves the cache's view identical to a
//!    cold rebuild.

use pdce::dfa::AnalysisCache;
use pdce::ir::{simplify_cfg, Block, CfgView, NodeId, Program, Stmt, Terminator};
use pdce::progen::{structured, tangled, GenConfig};
use pdce::ssa::DomInfo;
use pdce_rng::Rng;

fn config(seed: u64, nondet: bool) -> GenConfig {
    GenConfig {
        seed,
        target_blocks: 20,
        num_vars: 5,
        stmts_per_block: (1, 3),
        out_prob: 0.25,
        loop_prob: 0.3,
        max_depth: 3,
        expr_depth: 2,
        nondet,
    }
}

fn generate(case: usize, seed: u64) -> Program {
    if case % 4 == 3 {
        tangled(&config(seed, true), 5)
    } else {
        structured(&config(seed, case.is_multiple_of(2)))
    }
}

/// Reference block DFS postorder: successor order, entry-rooted — the
/// private traversal `domfront` and the solvers each derived before the
/// refactor.
fn reference_postorder(p: &Program) -> Vec<NodeId> {
    fn go(p: &Program, n: NodeId, seen: &mut [bool], post: &mut Vec<NodeId>) {
        seen[n.index()] = true;
        for m in p.successors(n) {
            if !seen[m.index()] {
                go(p, m, seen, post);
            }
        }
        post.push(n);
    }
    let mut seen = vec![false; p.num_blocks()];
    let mut post = Vec::new();
    go(p, p.entry(), &mut seen, &mut post);
    post
}

/// Reference instruction-graph DFS postorder: the traversal the faint
/// network used to run over its own edge lists.
fn reference_instr_postorder(p: &Program) -> Vec<u32> {
    let mut off = vec![0u32];
    for n in p.node_ids() {
        off.push(off.last().unwrap() + p.block(n).stmts.len() as u32 + 1);
    }
    let num_instrs = *off.last().unwrap() as usize;
    let succs_of = |i: u32| -> Vec<u32> {
        let n = off.partition_point(|&o| o <= i) - 1;
        if i + 1 < off[n + 1] {
            vec![i + 1]
        } else {
            p.successors(NodeId::from_index(n))
                .into_iter()
                .map(|m| off[m.index()])
                .collect()
        }
    };
    fn go(
        i: u32,
        succs_of: &dyn Fn(u32) -> Vec<u32>,
        seen: &mut [bool],
        count: &mut u32,
        po: &mut [u32],
    ) {
        seen[i as usize] = true;
        for j in succs_of(i) {
            if !seen[j as usize] {
                go(j, succs_of, seen, count, po);
            }
        }
        po[i as usize] = *count;
        *count += 1;
    }
    let mut po = vec![u32::MAX; num_instrs];
    let mut seen = vec![false; num_instrs];
    let mut count = 0;
    go(
        off[p.entry().index()],
        &succs_of,
        &mut seen,
        &mut count,
        &mut po,
    );
    po
}

/// The view's block orders, dominator input order, and instruction
/// order all agree with the reference traversals on 200 generated CFGs.
#[test]
fn orders_agree_with_reference_dfs_on_200_cfgs() {
    let mut rng = Rng::new(0xcf9_0001);
    for case in 0..200 {
        let p = generate(case, rng.next_u64());
        let view = CfgView::new(&p);

        // Block postorder and its reverse.
        let post = reference_postorder(&p);
        assert_eq!(view.postorder(), &post[..], "postorder (case {case})");
        let rpo: Vec<NodeId> = post.iter().rev().copied().collect();
        assert_eq!(view.rpo(), &rpo[..], "rpo (case {case})");
        for (i, &n) in rpo.iter().enumerate() {
            assert_eq!(view.rpo_index(n), i, "rpo_index (case {case})");
        }
        for n in p.node_ids() {
            if !post.contains(&n) {
                assert_eq!(view.rpo_index(n), usize::MAX, "unreachable (case {case})");
            }
        }

        // Adjacency matches the authoritative terminators.
        for n in p.node_ids() {
            assert_eq!(view.succs(n), &p.successors(n)[..], "succs (case {case})");
        }

        // The dominance layer consumes the same orders: its idoms match
        // the view's own solver.
        let dom = DomInfo::compute(&view);
        assert_eq!(dom.idom, view.immediate_dominators(), "idoms (case {case})");

        // Instruction arena layout and instruction postorder (the faint
        // network's priorities).
        let instr_po = reference_instr_postorder(&p);
        assert_eq!(
            view.instr_postorder(),
            &instr_po[..],
            "instr postorder (case {case})"
        );
        let mut expect_off = vec![0u32];
        for n in p.node_ids() {
            expect_off.push(expect_off.last().unwrap() + p.block(n).stmts.len() as u32 + 1);
        }
        assert_eq!(
            view.instr_offsets(),
            &expect_off[..],
            "offsets (case {case})"
        );
    }
}

/// One random mutation step. Returns a label for failure messages.
fn mutate(p: &mut Program, rng: &mut Rng, step: usize) -> &'static str {
    match rng.next_u64() % 6 {
        0 => {
            // Statement-local edit through the logged accessor.
            let candidates: Vec<NodeId> = p
                .node_ids()
                .filter(|&n| !p.block(n).stmts.is_empty())
                .collect();
            if let Some(&n) = candidates.get(rng.next_u64() as usize % candidates.len().max(1)) {
                let stmts = p.stmts_mut(n);
                let i = rng.next_u64() as usize % stmts.len();
                if rng.next_u64().is_multiple_of(2) {
                    stmts.remove(i);
                } else {
                    stmts.insert(i, Stmt::Skip);
                }
            }
            "stmts_mut"
        }
        1 => {
            // Conservative interior edit (logged as structural).
            let n = NodeId::from_index(rng.next_u64() as usize % p.num_blocks());
            p.block_mut(n).stmts.push(Stmt::Skip);
            "block_mut"
        }
        2 => {
            let name = format!("extra_{step}");
            let exit = p.exit();
            p.add_block(Block::new(name, Terminator::Goto(exit)))
                .expect("fresh name");
            "add_block"
        }
        3 => {
            let edges: Vec<(NodeId, NodeId)> = CfgView::new(p).edges().collect();
            if !edges.is_empty() {
                let (from, to) = edges[rng.next_u64() as usize % edges.len()];
                p.split_edge(from, to);
            }
            "split_edge"
        }
        4 => {
            p.touch();
            "touch"
        }
        _ => {
            // Whole-graph rewrite (drop unreachable blocks, merge
            // chains) through `replace_graph`.
            simplify_cfg(p);
            "simplify_cfg"
        }
    }
}

/// Property: after ANY `ChangeSet` sequence, the cached view equals a
/// cold rebuild — revision memoization never serves a stale view.
#[test]
fn cached_view_equals_cold_rebuild_under_random_mutations() {
    let mut rng = Rng::new(0xcf9_0002);
    for case in 0..40 {
        let mut p = generate(case, rng.next_u64());
        let mut cache = AnalysisCache::new();
        // Warm the cache before mutating.
        cache.cfg(&p);
        for step in 0..12 {
            let label = mutate(&mut p, &mut rng, step);
            let cached = cache.cfg(&p);
            assert_eq!(
                *cached,
                CfgView::new(&p),
                "cached view diverged after {label} (case {case}, step {step})"
            );
            // A second read with no interleaved mutation is a pure hit.
            let again = cache.cfg(&p);
            assert_eq!(
                *again, *cached,
                "idempotent read (case {case}, step {step})"
            );
        }
    }
}
