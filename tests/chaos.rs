//! Chaos soak for the self-healing serving plane: the real `pdce
//! serve` binary under mid-flight SIGKILL + restart cycles with a
//! shared crash-consistent cache, torn/truncated/bitflipped WAL tails
//! between restarts, randomized `FAULT_INJECT` schedules, watchdog
//! rescue of stalled and wedged workers, and quarantine persistence.
//!
//! The invariants the soak drives at:
//! - every request is eventually answered exactly once, byte-identical
//!   to a clean reference server (crashes lose in-flight responses,
//!   never produce wrong ones);
//! - warm replays after recovery are byte-identical to cold compute;
//! - no fault schedule, stall, or wedge ever drops an answer or kills
//!   the daemon.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdce::ir::printer::print_program;
use pdce::progen::{structured, GenConfig};
use pdce::serve::protocol::encode_request;
use pdce::serve::{Mode, ServeOptions, Server};
use pdce::trace::json;
use pdce_rng::Rng;

/// The chaos corpus: pre-encoded request lines, so every replay sends
/// byte-identical bytes and can be checked against the reference.
fn corpus(n: u64) -> Vec<String> {
    (0..n)
        .map(|i| {
            let prog = structured(&GenConfig {
                seed: 77_000 + i,
                target_blocks: 8 + (i as usize % 4) * 4,
                num_vars: 6,
                stmts_per_block: (1, 4),
                out_prob: 0.2,
                loop_prob: 0.3,
                max_depth: 8,
                expr_depth: 2,
                nondet: true,
            });
            encode_request(Some(&format!("c{i}")), &print_program(&prog), Mode::Pde)
        })
        .collect()
}

fn status_of(line: &str) -> f64 {
    json::parse(line)
        .unwrap_or_else(|e| panic!("response is not valid JSON ({e}): {line}"))
        .get("status")
        .and_then(|s| s.as_num())
        .unwrap_or_else(|| panic!("response has no numeric status: {line}"))
}

fn rung_of(line: &str) -> String {
    json::parse(line)
        .unwrap()
        .get("rung")
        .and_then(|r| r.as_str().map(str::to_string))
        .unwrap_or_else(|| panic!("response has no rung: {line}"))
}

fn health_field(line: &str, field: &str) -> f64 {
    json::parse(line)
        .unwrap()
        .get(field)
        .and_then(|v| v.as_num())
        .unwrap_or_else(|| panic!("health has no numeric `{field}`: {line}"))
}

/// Spawns the binary listening on a Unix socket with a persistent
/// cache; stdio is discarded (the test talks over the socket).
fn spawn_server(sock: &Path, cache: &Path, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pdce"));
    cmd.arg("serve")
        .arg("--unix")
        .arg(sock)
        .arg("--cache")
        .arg(cache)
        .arg("--jobs")
        .arg("2")
        .arg("--fsync-every")
        .arg("1")
        .args(extra);
    cmd.env_remove("FAULT_INJECT").env_remove("TV");
    cmd.stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn().expect("binary spawns")
}

fn connect(sock: &Path) -> std::os::unix::net::UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(stream) = std::os::unix::net::UnixStream::connect(sock) {
            return stream;
        }
        assert!(
            Instant::now() < deadline,
            "server never came up on {}",
            sock.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdce-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Damages the cache log the way a crash (or bad disk) does: a torn
/// half-line append, a truncated tail, or a flipped byte near the end.
/// Recovery must replay the longest valid prefix and recompute the
/// rest — damage can cost misses, never wrong answers.
fn damage_wal(path: &Path, cycle: usize) {
    let mut bytes = std::fs::read(path).expect("cache log exists after a crash");
    match cycle % 3 {
        0 => bytes.extend_from_slice(b"{\"insert\":{\"key\":\"torn-mid-wri"),
        1 => {
            let keep = bytes.len().saturating_sub(9);
            bytes.truncate(keep);
        }
        _ => {
            let at = bytes.len().saturating_sub(bytes.len() / 8 + 1);
            bytes[at] ^= 0x20;
        }
    }
    std::fs::write(path, &bytes).unwrap();
}

// ---------------------------------------------------------------------
// Kill/restart cycles over a shared crash-consistent cache
// ---------------------------------------------------------------------

#[test]
fn kill_restart_cycles_lose_no_requests_and_warm_replays_are_byte_identical() {
    let dir = fresh_dir("kill");
    let sock = dir.join("chaos.sock");
    let cache = dir.join("chaos.cache");
    let requests = corpus(24);
    // Clean in-process reference: the byte-exact expected answer for
    // every request, independent of jobs, cache temperature, crashes.
    let reference_server = Arc::new(Server::new(ServeOptions::default()));
    let reference: Vec<String> = requests
        .iter()
        .map(|r| reference_server.respond_line(r).unwrap())
        .collect();

    let mut answered: Vec<Option<String>> = vec![None; requests.len()];
    let mut rng = Rng::new(0xC4A0_5EED);

    // Three SIGKILL cycles: each replays everything still unanswered,
    // reads a random prefix of the responses, then kills the server
    // mid-flight and corrupts the log tail before the next restart.
    for cycle in 0..3 {
        let pending: Vec<usize> = (0..requests.len())
            .filter(|&i| answered[i].is_none())
            .collect();
        assert!(!pending.is_empty(), "cycle {cycle} has work left");
        let mut child = spawn_server(&sock, &cache, &[]);
        let mut stream = connect(&sock);
        for &i in &pending {
            stream.write_all(requests[i].as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        // Accept between 1 and half the pending responses, then kill.
        let take = 1 + rng.gen_range(0, (pending.len() / 2).max(1));
        let mut reader = BufReader::new(stream);
        for &i in pending.iter().take(take) {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.ends_with('\n'), "torn response line: {line}");
            let line = line.trim_end().to_string();
            assert!(
                answered[i].replace(line).is_none(),
                "request {i} answered twice"
            );
        }
        child.kill().expect("SIGKILL lands");
        let _ = child.wait();
        // Responses the kernel had buffered die with the dropped
        // stream: the client's view is "unanswered", and the next
        // cycle replays them.
        damage_wal(&cache, cycle);
    }

    // Final clean cycle: finish the remainder, then a full warm replay.
    let mut child = spawn_server(&sock, &cache, &[]);
    let stream = connect(&sock);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    let pending: Vec<usize> = (0..requests.len())
        .filter(|&i| answered[i].is_none())
        .collect();
    assert!(
        !pending.is_empty(),
        "the kill cycles answered everything; nothing left to prove recovery on"
    );
    for &i in &pending {
        stream.write_all(requests[i].as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    for &i in &pending {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        answered[i] = Some(line.trim_end().to_string());
    }

    // Exactly-once, byte-identical: every request has one accepted
    // answer and it matches the clean reference.
    let mut lost = 0usize;
    for (i, got) in answered.iter().enumerate() {
        let got = got.as_ref().unwrap_or_else(|| {
            lost += 1;
            panic!("request {i} lost across restarts")
        });
        assert_eq!(status_of(got), 0.0, "request {i} failed: {got}");
        assert_eq!(
            got, &reference[i],
            "request {i} diverged from the clean reference after crashes"
        );
    }
    assert_eq!(lost, 0, "requests lost");

    // Warm replay on the recovered server: byte-identical again, and
    // actually warm (the cache survived three kills plus log damage).
    for (i, request) in requests.iter().enumerate() {
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            line.trim_end(),
            reference[i],
            "warm replay {i} diverged after recovery"
        );
    }
    stream
        .write_all(b"{\"op\":\"health\",\"id\":\"h\"}\n{\"op\":\"shutdown\"}\n")
        .unwrap();
    let mut health = String::new();
    reader.read_line(&mut health).unwrap();
    assert!(
        health_field(&health, "wal_recovered") > 0.0,
        "the final restart recovered nothing from the log: {health}"
    );
    assert!(
        health_field(&health, "cache_hits") >= requests.len() as f64,
        "the warm replay was not served from the recovered cache: {health}"
    );
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("\"shutdown\":true"));
    assert!(child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Randomized fault schedules through the real binary
// ---------------------------------------------------------------------

/// Runs the binary over stdio with a `FAULT_INJECT` schedule, feeding
/// `input`, returning (stdout, stderr, success).
fn serve_stdio(args: &[&str], fault: Option<&str>, input: &str) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pdce"));
    cmd.arg("serve").args(args);
    cmd.env_remove("FAULT_INJECT").env_remove("TV");
    if let Some(spec) = fault {
        cmd.env("FAULT_INJECT", spec);
    }
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn randomized_fault_schedules_never_drop_an_answer() {
    let requests = corpus(12);
    let mut input = requests.join("\n");
    input.push_str("\n{\"op\":\"shutdown\",\"id\":\"drain\"}\n");
    let mut rng = Rng::new(0xFA17_5EED);
    for trial in 0..5u32 {
        // One or two independent directives per trial, drawn from the
        // real instrumentation sites with random occurrence picks.
        let mut directives = Vec::new();
        for _ in 0..rng.gen_range_inclusive(1, 2) {
            let (site, kinds): (&str, &[&str]) = match rng.gen_range(0, 5) {
                0 => ("sink", &["panic", "budget"]),
                1 => ("solve", &["panic", "budget"]),
                2 => ("serve", &["panic", "budget"]),
                3 => ("dead", &["bitflip"]),
                _ => ("faint", &["bitflip"]),
            };
            let kind = kinds[rng.gen_range(0, kinds.len())];
            let nth = match rng.gen_range(0, 3) {
                0 => "*".to_string(),
                _ => format!("{}", rng.gen_range_inclusive(1, 6)),
            };
            directives.push(format!("{kind}:{site}:{nth}"));
        }
        let spec = directives.join(",");
        let (stdout, stderr, ok) = serve_stdio(&["--jobs", "2", "--no-cache"], Some(&spec), &input);
        assert!(ok, "trial {trial}: daemon died under `{spec}`: {stderr}");
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(
            lines.len(),
            requests.len() + 1,
            "trial {trial} (`{spec}`): every request answered plus the shutdown ack"
        );
        for line in &lines[..requests.len()] {
            assert_eq!(
                status_of(line),
                0.0,
                "trial {trial} (`{spec}`): request failed: {line}"
            );
        }
        assert!(lines[requests.len()].contains("\"shutdown\":true"));
    }
}

// ---------------------------------------------------------------------
// Watchdog: stalled and wedged workers
// ---------------------------------------------------------------------

#[test]
fn soft_deadline_frees_a_cooperatively_stalled_request() {
    // `stall` sleeps while polling the cancellation flag (up to 10s).
    // The soft watchdog deadline raises the flag at 100ms, the request
    // degrades down the ladder, and the batch finishes far inside the
    // stall term — proof the cancel actually freed the worker.
    let requests = corpus(8);
    let mut input = requests.join("\n");
    input.push_str("\n{\"op\":\"shutdown\"}\n");
    let started = Instant::now();
    let (stdout, stderr, ok) = serve_stdio(
        &[
            "--jobs",
            "2",
            "--no-cache",
            "--watchdog-soft-ms",
            "100",
            "--watchdog-hard-ms",
            "5000",
        ],
        Some("stall:solve:1"),
        &input,
    );
    assert!(ok, "daemon died under stall: {stderr}");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "the soft deadline never freed the stalled worker"
    );
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), requests.len() + 1, "every request answered");
    let mut degraded = 0usize;
    for line in &lines[..requests.len()] {
        assert_eq!(status_of(line), 0.0, "stalled batch lost a request: {line}");
        if rung_of(line) != "none" {
            degraded += 1;
        }
    }
    assert!(
        degraded >= 1,
        "the stall never degraded anything:\n{stdout}"
    );
}

#[test]
fn hard_deadline_abandons_a_wedged_worker_and_answers_its_request() {
    // `wedge` sleeps through cancellation (1.5s). The hard deadline at
    // 300ms abandons the hostage, synthesizes the identity answer at
    // the `watchdog-timeout` rung, and the siblings finish on a
    // replacement worker.
    let requests = corpus(8);
    let mut input = requests.join("\n");
    input.push_str("\n{\"op\":\"shutdown\"}\n");
    let (stdout, stderr, ok) = serve_stdio(
        &[
            "--jobs",
            "2",
            "--no-cache",
            "--watchdog-soft-ms",
            "100",
            "--watchdog-hard-ms",
            "300",
        ],
        Some("wedge:solve:1"),
        &input,
    );
    assert!(ok, "daemon died under wedge: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), requests.len() + 1, "every request answered");
    let mut timed_out = 0usize;
    for line in &lines[..requests.len()] {
        assert_eq!(status_of(line), 0.0, "wedged batch lost a request: {line}");
        if rung_of(line) == "watchdog-timeout" {
            timed_out += 1;
        }
    }
    assert_eq!(
        timed_out, 1,
        "exactly the wedged request is answered at the watchdog rung:\n{stdout}"
    );
}

// ---------------------------------------------------------------------
// Quarantine persistence across restarts
// ---------------------------------------------------------------------

#[test]
fn quarantine_survives_a_restart_and_short_circuits_immediately() {
    let dir = fresh_dir("quarantine");
    let sock = dir.join("q.sock");
    let cache = dir.join("q.cache");
    // A request that deterministically fails every solving rung: a
    // zero pop budget exhausts the ladder (identity still answers).
    let prog = "prog { block s { x := 1; out(x); goto e } block e { halt } }";
    let mut escaped = String::new();
    json::write_escaped(&mut escaped, prog);
    let poison =
        format!("{{\"id\":\"p\",\"program\":{escaped},\"max_pops\":0,\"no_cache\":true}}\n");
    let flags = ["--max-strikes", "2"];

    let mut child = spawn_server(&sock, &cache, &flags);
    let stream = connect(&sock);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    let ask = |stream: &mut std::os::unix::net::UnixStream,
               reader: &mut BufReader<std::os::unix::net::UnixStream>,
               line: &str|
     -> String {
        stream.write_all(line.as_bytes()).unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };
    // Two strikes compute (and fail); the third short-circuits.
    for expect in ["identity", "identity", "quarantined"] {
        let response = ask(&mut stream, &mut reader, &poison);
        assert_eq!(status_of(&response), 0.0);
        assert_eq!(rung_of(&response), expect, "got: {response}");
    }
    let health = ask(
        &mut stream,
        &mut reader,
        "{\"op\":\"health\",\"id\":\"h\"}\n",
    );
    assert_eq!(health_field(&health, "quarantine_size"), 1.0, "{health}");
    let ack = ask(&mut stream, &mut reader, "{\"op\":\"shutdown\"}\n");
    assert!(ack.contains("\"shutdown\":true"));
    assert!(child.wait().unwrap().success());

    // Restart: the persisted set short-circuits on the first sighting,
    // without burning fresh strikes.
    let mut child = spawn_server(&sock, &cache, &flags);
    let stream = connect(&sock);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    let response = ask(&mut stream, &mut reader, &poison);
    assert_eq!(
        rung_of(&response),
        "quarantined",
        "the quarantine set did not survive the restart: {response}"
    );
    let health = ask(
        &mut stream,
        &mut reader,
        "{\"op\":\"health\",\"id\":\"h\"}\n",
    );
    assert_eq!(health_field(&health, "quarantine_size"), 1.0, "{health}");
    assert!(health_field(&health, "quarantine_hits") >= 1.0, "{health}");
    let ack = ask(&mut stream, &mut reader, "{\"op\":\"shutdown\"}\n");
    assert!(ack.contains("\"shutdown\":true"));
    assert!(child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}
