//! End-to-end tests of the `pdce` command-line tool.

use std::io::Write;
use std::process::{Command, Stdio};

const FIG1: &str = "prog {
    block s  { goto n1 }
    block n1 { y := a + b; nondet n2 n3 }
    block n2 { y := 4; goto n4 }
    block n3 { out(y); goto n4 }
    block n4 { out(y); goto e }
    block e  { halt }
}";

fn pdce(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pdce"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn opt_optimizes_fig1() {
    let (stdout, stderr, ok) = pdce(&["opt", "--stats", "--verify"], FIG1);
    assert!(ok, "stderr: {stderr}");
    // The sunk assignment now sits in n3, not n1.
    let reparsed = pdce::ir::parser::parse(&stdout).expect("output parses");
    let n1 = reparsed.block_by_name("n1").unwrap();
    assert!(reparsed.block(n1).stmts.is_empty());
    assert!(stderr.contains("eliminated:  1"));
    assert!(stderr.contains("verified: dominates the input"));
}

#[test]
fn opt_modes_differ_on_faint_code() {
    let faint_loop = "prog {
        block s { goto l }
        block l { x := x + 1; nondet l d }
        block d { goto e }
        block e { halt }
    }";
    let (with_pde, _, ok) = pdce(&["opt", "--mode", "pde"], faint_loop);
    assert!(ok);
    assert!(with_pde.contains("x := x + 1"));
    let (with_pfe, _, ok) = pdce(&["opt", "--mode", "pfe"], faint_loop);
    assert!(ok);
    assert!(!with_pfe.contains("x := x + 1"));
}

#[test]
fn opt_respects_region_and_rounds() {
    let (stdout, _, ok) = pdce(&["opt", "--region", "n2,n3", "--stats"], FIG1);
    assert!(ok);
    assert!(stdout.contains("y := a + b"), "nothing may leave n1");
    let (_, stderr, ok) = pdce(&["opt", "--max-rounds", "1", "--stats"], FIG1);
    assert!(ok);
    assert!(stderr.contains("rounds:      1"));
}

#[test]
fn opt_explain_names_passes_and_rounds() {
    let (stdout, stderr, ok) = pdce(&["opt", "--explain"], FIG1);
    assert!(ok, "stderr: {stderr}");
    // stdout stays the plain optimized program; the log goes to stderr.
    pdce::ir::parser::parse(&stdout).expect("output parses");
    assert!(stderr.contains("round 1:"), "stderr: {stderr}");
    assert!(stderr.contains("[sink] sank"));
    assert!(stderr.contains("`y := a + b` from block n1"));
    assert!(stderr.contains("[dce ] eliminated"));
}

#[test]
fn opt_trace_writes_chrome_json() {
    let path = std::env::temp_dir().join(format!("pdce-cli-trace-{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = pdce(&["opt", "--trace", path_str], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("trace: wrote"), "stderr: {stderr}");
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_file(&path).ok();
    let doc = pdce::trace::json::parse(&text).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    assert!(!events.is_empty());
}

#[test]
fn opt_pipeline_stats_report_passes() {
    let (_, stderr, ok) = pdce(&["opt", "--passes", "repeat(dce,sink)", "--stats"], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("time%"), "stderr: {stderr}");
    assert!(stderr.contains("sink"));
}

#[test]
fn run_executes_and_prints_outputs() {
    let (stdout, stderr, ok) = pdce(&["run", "--in", "a=2", "--in", "b=3", "--seed", "1"], FIG1);
    assert!(ok, "stderr: {stderr}");
    // Whatever branch the seed picks, the final out(y) prints something.
    assert!(!stdout.trim().is_empty());
    assert!(stderr.contains("halted"));
}

#[test]
fn run_warns_on_unknown_input() {
    let (_, stderr, ok) = pdce(&["run", "--in", "zz=1"], FIG1);
    assert!(ok);
    assert!(stderr.contains("warning"));
}

#[test]
fn analyze_reports_facts() {
    let (stdout, _, ok) = pdce(&["analyze"], FIG1);
    assert!(ok);
    assert!(stdout.contains("patterns:"));
    assert!(stdout.contains("sinking candidate"));
    assert!(stdout.contains("N-INSERT"));
}

#[test]
fn dot_exports_graph() {
    let (stdout, _, ok) = pdce(&["dot"], FIG1);
    assert!(ok);
    assert!(stdout.starts_with("digraph pdce"));
}

#[test]
fn check_validates() {
    let (stdout, _, ok) = pdce(&["check"], FIG1);
    assert!(ok);
    assert!(stdout.contains("ok: 6 block(s)"));
    let (_, stderr, ok) = pdce(&["check"], "prog { block s { goto nowhere } }");
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn usage_errors_exit_2() {
    let (_, stderr, ok) = pdce(&["frobnicate"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
    let (_, stderr, ok) = pdce(&["opt", "--mode"], "");
    assert!(!ok);
    assert!(stderr.contains("needs a value"));
    let (_, stderr, ok) = pdce(&["opt", "--mode", "zap"], FIG1);
    assert!(!ok);
    assert!(stderr.contains("unknown mode"));
}

#[test]
fn universe_confirms_optimality() {
    let (stdout, stderr, ok) = pdce(&["universe", "--max", "500"], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("optimal: dominates all"), "{stdout}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, stderr, ok) = pdce(&["opt", "/nonexistent/path.pdce"], "");
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = pdce(&["help"], "");
    assert!(ok);
    assert!(stdout.contains("usage:"));
}
