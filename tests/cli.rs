//! End-to-end tests of the `pdce` command-line tool.

use std::io::Write;
use std::process::{Command, Stdio};

const FIG1: &str = "prog {
    block s  { goto n1 }
    block n1 { y := a + b; nondet n2 n3 }
    block n2 { y := 4; goto n4 }
    block n3 { out(y); goto n4 }
    block n4 { out(y); goto e }
    block e  { halt }
}";

fn pdce(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pdce"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn opt_optimizes_fig1() {
    let (stdout, stderr, ok) = pdce(&["opt", "--stats", "--verify"], FIG1);
    assert!(ok, "stderr: {stderr}");
    // The sunk assignment now sits in n3, not n1.
    let reparsed = pdce::ir::parser::parse(&stdout).expect("output parses");
    let n1 = reparsed.block_by_name("n1").unwrap();
    assert!(reparsed.block(n1).stmts.is_empty());
    assert!(stderr.contains("eliminated:  1"));
    assert!(stderr.contains("verified: dominates the input"));
}

#[test]
fn opt_modes_differ_on_faint_code() {
    let faint_loop = "prog {
        block s { goto l }
        block l { x := x + 1; nondet l d }
        block d { goto e }
        block e { halt }
    }";
    let (with_pde, _, ok) = pdce(&["opt", "--mode", "pde"], faint_loop);
    assert!(ok);
    assert!(with_pde.contains("x := x + 1"));
    let (with_pfe, _, ok) = pdce(&["opt", "--mode", "pfe"], faint_loop);
    assert!(ok);
    assert!(!with_pfe.contains("x := x + 1"));
}

#[test]
fn opt_respects_region_and_rounds() {
    let (stdout, _, ok) = pdce(&["opt", "--region", "n2,n3", "--stats"], FIG1);
    assert!(ok);
    assert!(stdout.contains("y := a + b"), "nothing may leave n1");
    let (_, stderr, ok) = pdce(&["opt", "--max-rounds", "1", "--stats"], FIG1);
    assert!(ok);
    assert!(stderr.contains("rounds:      1"));
}

#[test]
fn opt_explain_names_passes_and_rounds() {
    let (stdout, stderr, ok) = pdce(&["opt", "--explain"], FIG1);
    assert!(ok, "stderr: {stderr}");
    // stdout stays the plain optimized program; the log goes to stderr.
    pdce::ir::parser::parse(&stdout).expect("output parses");
    assert!(stderr.contains("round 1:"), "stderr: {stderr}");
    assert!(stderr.contains("[sink] sank"));
    assert!(stderr.contains("`y := a + b` from block n1"));
    assert!(stderr.contains("[dce ] eliminated"));
}

#[test]
fn opt_trace_writes_chrome_json() {
    let path = std::env::temp_dir().join(format!("pdce-cli-trace-{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = pdce(&["opt", "--trace", path_str], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("trace: wrote"), "stderr: {stderr}");
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_file(&path).ok();
    let doc = pdce::trace::json::parse(&text).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    assert!(!events.is_empty());
}

#[test]
fn opt_pipeline_stats_report_passes() {
    let (_, stderr, ok) = pdce(&["opt", "--passes", "repeat(dce,sink)", "--stats"], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("time%"), "stderr: {stderr}");
    assert!(stderr.contains("sink"));
}

#[test]
fn run_executes_and_prints_outputs() {
    let (stdout, stderr, ok) = pdce(&["run", "--in", "a=2", "--in", "b=3", "--seed", "1"], FIG1);
    assert!(ok, "stderr: {stderr}");
    // Whatever branch the seed picks, the final out(y) prints something.
    assert!(!stdout.trim().is_empty());
    assert!(stderr.contains("halted"));
}

#[test]
fn run_warns_on_unknown_input() {
    let (_, stderr, ok) = pdce(&["run", "--in", "zz=1"], FIG1);
    assert!(ok);
    assert!(stderr.contains("warning"));
}

#[test]
fn analyze_reports_facts() {
    let (stdout, _, ok) = pdce(&["analyze"], FIG1);
    assert!(ok);
    assert!(stdout.contains("patterns:"));
    assert!(stdout.contains("sinking candidate"));
    assert!(stdout.contains("N-INSERT"));
}

#[test]
fn dot_exports_graph() {
    let (stdout, _, ok) = pdce(&["dot"], FIG1);
    assert!(ok);
    assert!(stdout.starts_with("digraph pdce"));
}

#[test]
fn check_validates() {
    let (stdout, _, ok) = pdce(&["check"], FIG1);
    assert!(ok);
    assert!(stdout.contains("ok: 6 block(s)"));
    let (_, stderr, ok) = pdce(&["check"], "prog { block s { goto nowhere } }");
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn usage_errors_exit_2() {
    let (_, stderr, ok) = pdce(&["frobnicate"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
    let (_, stderr, ok) = pdce(&["opt", "--mode"], "");
    assert!(!ok);
    assert!(stderr.contains("needs a value"));
    let (_, stderr, ok) = pdce(&["opt", "--mode", "zap"], FIG1);
    assert!(!ok);
    assert!(stderr.contains("unknown mode"));
}

#[test]
fn universe_confirms_optimality() {
    let (stdout, stderr, ok) = pdce(&["universe", "--max", "500"], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("optimal: dominates all"), "{stdout}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, stderr, ok) = pdce(&["opt", "/nonexistent/path.pdce"], "");
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

/// Writes `contents` to a unique temp file and returns its path.
fn temp_file(tag: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pdce-cli-{tag}-{}.pdce", std::process::id()));
    std::fs::write(&path, contents).expect("temp file writable");
    path
}

#[test]
fn empty_file_is_a_clean_diagnostic() {
    let path = temp_file("empty", "");
    let (_, stderr, ok) = pdce(&["opt", path.to_str().unwrap()], "");
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains("error"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn unreachable_exit_is_a_clean_diagnostic() {
    let stuck = "prog {
        block s { goto l }
        block l { goto l }
        block e { halt }
    }";
    let (_, stderr, ok) = pdce(&["opt"], stuck);
    assert!(!ok);
    assert!(stderr.contains("error"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn solver_flag_selects_strategy_and_rejects_garbage() {
    for solver in ["fifo", "priority", "sparse"] {
        let (stdout, stderr, ok) = pdce(&["opt", "--solver", solver, "--stats"], FIG1);
        assert!(ok, "--solver {solver} stderr: {stderr}");
        pdce::ir::parser::parse(&stdout).expect("output parses");
        assert!(stderr.contains("pops:"), "stderr: {stderr}");
        // Pops are tagged with the strategy that produced them.
        let line = stderr.lines().find(|l| l.contains("pops:")).unwrap();
        match solver {
            "fifo" => assert!(line.contains("0 priority"), "line: {line}"),
            "sparse" => {
                assert!(line.contains("0 fifo"), "line: {line}");
                assert!(line.contains("0 priority"), "line: {line}");
                assert!(!line.contains("0 sparse"), "line: {line}");
            }
            _ => assert!(line.contains("0 fifo"), "line: {line}"),
        }
    }
    let (_, stderr, ok) = pdce(&["opt", "--solver", "lifo"], FIG1);
    assert!(!ok);
    assert!(stderr.contains("unknown solver"), "stderr: {stderr}");
}

#[test]
fn batch_opt_shards_files_and_keeps_argument_order() {
    let loopy = "prog {
        block s { x := a + b; goto l }
        block l { out(a); nondet l e }
        block e { halt }
    }";
    let f1 = temp_file("batch1", FIG1);
    let f2 = temp_file("batch2", loopy);
    let run = |jobs: &str| {
        pdce(
            &[
                "opt",
                "--jobs",
                jobs,
                "--stats",
                f1.to_str().unwrap(),
                f2.to_str().unwrap(),
            ],
            "",
        )
    };
    let (seq_out, seq_err, ok) = run("1");
    assert!(ok, "stderr: {seq_err}");
    let (par_out, par_err, ok) = run("4");
    assert!(ok, "stderr: {par_err}");
    std::fs::remove_file(&f1).ok();
    std::fs::remove_file(&f2).ok();
    assert_eq!(seq_out, par_out, "stdout must not depend on --jobs");
    // Headers appear in argument order, each followed by its program.
    let h1 = seq_out
        .find(&format!("// ==== {} ====", f1.display()))
        .unwrap();
    let h2 = seq_out
        .find(&format!("// ==== {} ====", f2.display()))
        .unwrap();
    assert!(h1 < h2);
    assert!(seq_err.contains("total:"), "stderr: {seq_err}");
}

#[test]
fn batch_opt_reports_failing_files_without_panicking() {
    let f1 = temp_file("batchgood", FIG1);
    let (stdout, stderr, ok) = pdce(
        &["opt", f1.to_str().unwrap(), "/nonexistent/batch.pdce"],
        "",
    );
    std::fs::remove_file(&f1).ok();
    assert!(!ok);
    // The good file still optimizes and prints...
    assert!(stdout.contains("// ===="), "stdout: {stdout}");
    // ...and the bad one is named in a clean per-file diagnostic.
    assert!(
        stderr.contains("/nonexistent/batch.pdce"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("1 of 2 file(s) failed"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = pdce(&["help"], "");
    assert!(ok);
    assert!(stdout.contains("usage:"));
}

/// Like `pdce`, but also returns the raw exit code.
fn pdce_code(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pdce"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn parse_error_reports_position_and_exits_1() {
    let (_, stderr, code) = pdce_code(&["opt"], "prog { block s { x = 1 } }");
    assert_eq!(code, 1, "stderr: {stderr}");
    // Diagnostics carry file:line:col (stdin renders as <stdin>).
    assert!(stderr.contains("<stdin>:1:"), "stderr: {stderr}");
    let bad = temp_file("parse-err", "prog {\n  block s { x = 1 }\n}");
    let (_, stderr, code) = pdce_code(&["opt", bad.to_str().unwrap()], "");
    std::fs::remove_file(&bad).ok();
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(
        stderr.contains(&format!("{}:2:", bad.display())),
        "stderr: {stderr}"
    );
}

#[test]
fn bad_input_exits_1_usage_exits_2() {
    let (_, _, code) = pdce_code(&["opt", "/nonexistent/nope.pdce"], "");
    assert_eq!(code, 1);
    let (_, _, code) = pdce_code(&["opt", "--frobnicate"], "");
    assert_eq!(code, 2);
    let (_, _, code) = pdce_code(&["frobnicate"], "");
    assert_eq!(code, 2);
}

#[test]
fn validate_semantics_reports_tv_checks() {
    let (stdout, stderr, ok) = pdce(&["opt", "--validate-semantics", "--stats"], FIG1);
    assert!(ok, "stderr: {stderr}");
    pdce::ir::parser::parse(&stdout).expect("output parses");
    assert!(stderr.contains("tv check(s)"), "stderr: {stderr}");
    assert!(stderr.contains("0 tv rollback(s)"), "stderr: {stderr}");
    // The optimization is still effective under validation.
    assert!(stderr.contains("eliminated:  1"), "stderr: {stderr}");
    // Explicit vector-count form.
    let (_, stderr, ok) = pdce(&["opt", "--validate-semantics=3", "--stats"], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("tv check(s)"), "stderr: {stderr}");
}

#[test]
fn exhausted_pop_budget_degrades_to_identity() {
    let (stdout, stderr, ok) = pdce(&["opt", "--max-pops", "1", "--stats"], FIG1);
    assert!(ok, "stderr: {stderr}");
    // Every rung of the ladder runs out of pops, so the program comes
    // back verbatim — flagged, not failed.
    let reparsed = pdce::ir::parser::parse(&stdout).expect("output parses");
    let n1 = reparsed.block_by_name("n1").unwrap();
    assert_eq!(reparsed.block(n1).stmts.len(), 1, "nothing was optimized");
    assert!(stderr.contains("degraded:    identity"), "stderr: {stderr}");
    assert!(stderr.contains("warning:"), "stderr: {stderr}");
    assert!(stderr.contains("budget exhaustion"), "stderr: {stderr}");
}

#[test]
fn generous_budget_flags_do_not_degrade() {
    let (_, stderr, ok) = pdce(
        &[
            "opt",
            "--max-pops",
            "100000",
            "--wall-ms",
            "60000",
            "--stats",
        ],
        FIG1,
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("eliminated:  1"), "stderr: {stderr}");
    assert!(!stderr.contains("degraded"), "stderr: {stderr}");
}

/// Batch `--explain` renders one provenance section per file, in
/// argument order, independent of the worker count — worker solver
/// stats are thread-local, so the sections must be built from the
/// per-file reports, not from main-thread totals.
#[test]
fn batch_explain_is_ordered_and_jobs_invariant() {
    let loopy = "prog {
        block s { goto l }
        block l { y := a + b; nondet l d }
        block d { out(y); goto e }
        block e { halt }
    }";
    let f1 = temp_file("explain1", FIG1);
    let f2 = temp_file("explain2", loopy);
    let f3 = temp_file("explain3", FIG1);
    let paths: Vec<&str> = [&f1, &f2, &f3]
        .iter()
        .map(|p| p.to_str().unwrap())
        .collect();
    let run = |jobs: &str| {
        let args: Vec<&str> = ["opt", "--explain", "--jobs", jobs]
            .into_iter()
            .chain(paths.iter().copied())
            .collect();
        let (_, stderr, ok) = pdce(&args, "");
        assert!(ok, "jobs={jobs} stderr: {stderr}");
        stderr
    };
    let seq = run("1");
    let par = run("4");
    assert_eq!(seq, par, "explain output must not depend on --jobs");
    // One header per file, in argument order.
    let positions: Vec<usize> = paths
        .iter()
        .map(|p| {
            seq.find(&format!("// ==== {p} ===="))
                .unwrap_or_else(|| panic!("missing section for {p} in: {seq}"))
        })
        .collect();
    assert!(positions[0] < positions[1] && positions[1] < positions[2]);
    // The sections carry real provenance, including per-file solver
    // telemetry (which lives on worker threads under --jobs).
    assert!(seq.contains("transformation(s), in application order"));
    assert!(seq.contains("cold solve(s)"), "stderr: {seq}");
    for f in [f1, f2, f3] {
        std::fs::remove_file(f).ok();
    }
}

/// Keep only the sample lines of deterministic families (marked by the
/// `# STABILITY <name> deterministic` comment) from a Prometheus
/// exposition.
fn deterministic_series(prom: &str) -> String {
    let stable: Vec<&str> = prom
        .lines()
        .filter_map(|l| l.strip_prefix("# STABILITY "))
        .filter_map(|l| l.strip_suffix(" deterministic"))
        .collect();
    prom.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter(|l| {
            let family = l
                .split(['{', ' '])
                .next()
                .unwrap_or("")
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            stable.contains(&family)
        })
        .map(|l| format!("{l}\n"))
        .collect()
}

/// `--metrics-out` snapshots restrict to byte-identical deterministic
/// series for any `--jobs` value, and `--events-out` logs are
/// byte-identical outright (no wall-clock fields, argument-order seq).
#[test]
fn metrics_and_events_snapshots_are_jobs_invariant() {
    let f1 = temp_file("metrics1", FIG1);
    let f2 = temp_file("metrics2", FIG1);
    let run = |jobs: &str| {
        let tag = format!("out-j{jobs}-{}", std::process::id());
        let mpath = std::env::temp_dir().join(format!("pdce-m-{tag}.prom"));
        let epath = std::env::temp_dir().join(format!("pdce-e-{tag}.jsonl"));
        let (_, stderr, ok) = pdce(
            &[
                "opt",
                "--jobs",
                jobs,
                "--metrics-out",
                mpath.to_str().unwrap(),
                "--events-out",
                epath.to_str().unwrap(),
                f1.to_str().unwrap(),
                f2.to_str().unwrap(),
            ],
            "",
        );
        assert!(ok, "jobs={jobs} stderr: {stderr}");
        let prom = std::fs::read_to_string(&mpath).expect("metrics file written");
        let events = std::fs::read_to_string(&epath).expect("events file written");
        std::fs::remove_file(mpath).ok();
        std::fs::remove_file(epath).ok();
        (prom, events)
    };
    let (prom1, events1) = run("1");
    let (prom4, events4) = run("4");
    assert_eq!(events1, events4, "event logs must not depend on --jobs");
    assert!(events1.lines().count() >= 3, "run event + one per file");
    assert!(events1.starts_with("{\"run\":\""), "events: {events1}");
    let det1 = deterministic_series(&prom1);
    let det4 = deterministic_series(&prom4);
    assert_eq!(det1, det4, "deterministic series must not depend on --jobs");
    assert!(
        det1.contains("pdce_rounds_total"),
        "deterministic series present: {det1}"
    );
    // Timing families are in the exposition too (this is the full
    // snapshot), just excluded from the stability contract.
    assert!(prom1.contains("pdce_file_wall_ns_count"), "prom: {prom1}");
    for f in [f1, f2] {
        std::fs::remove_file(f).ok();
    }
}

/// `--metrics` appends the human-readable registry table to stderr —
/// counters from the driver path, pass latency histograms from the
/// pipeline path.
#[test]
fn metrics_flag_prints_human_table() {
    let (_, stderr, ok) = pdce(&["opt", "--stats", "--metrics"], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("pdce_rounds_total"), "stderr: {stderr}");
    assert!(stderr.contains("pdce_file_wall_ns"), "stderr: {stderr}");
    assert!(stderr.contains("p50<="), "stderr: {stderr}");
    let (_, stderr, ok) = pdce(&["opt", "--passes", "pde", "--metrics"], FIG1);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stderr.contains("pdce_pass_wall_ns{pass=\"pde\"}"),
        "stderr: {stderr}"
    );
}
