//! The hand-written corpus (`corpus/*.pdce`): realistic programs run
//! through every optimizer with full guarantee checking — parse, all
//! four driver modes, hoisting, LCM, SCCP, LVN, simplification; verify
//! semantics, per-path dominance, idempotence, and print/parse
//! round-trips for each.

use pdce::baselines::{hoist_assignments, local_value_numbering};
use pdce::core::better::{check_improvement, BetterOptions};
use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::edgesplit::split_critical_edges;
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle, Trace};
use pdce::ir::parser::parse;
use pdce::ir::printer::canonical_string;
use pdce::ir::{simplify_cfg, Program};
use pdce::lcm::lazy_code_motion;
use pdce::ssa::sccp;

const INPUTS: [(&str, i64); 6] = [
    ("a", 54),
    ("b", 24),
    ("frame", 3),
    ("input", 7),
    ("c", -2),
    ("live", 0),
];

fn corpus() -> Vec<(String, Program)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("corpus directory exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pdce") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("corpus file readable");
        let prog = parse(&src).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        out.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            prog,
        ));
    }
    assert!(out.len() >= 6, "corpus went missing?");
    out.sort_by(|x, y| x.0.cmp(&y.0));
    out
}

fn reference_run(prog: &Program, seed: u64) -> Trace {
    let mut env = Env::with_values(prog, &INPUTS);
    let mut oracle = SeededOracle::new(seed);
    run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 10_000,
        },
    )
}

fn replay(prog: &Program, decisions: Vec<usize>) -> Trace {
    let mut env = Env::with_values(prog, &INPUTS);
    let mut oracle = ReplayOracle::new(decisions);
    run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 10_000,
        },
    )
}

fn assert_equivalent(name: &str, original: &Program, optimized: &Program, pass: &str) {
    for seed in [1u64, 7, 123] {
        let t0 = reference_run(original, seed);
        let t1 = replay(optimized, t0.decisions.clone());
        assert_eq!(
            t0.outputs, t1.outputs,
            "{name}: {pass} changed semantics (seed {seed})"
        );
    }
}

#[test]
fn drivers_on_corpus() {
    for (name, prog) in corpus() {
        for (label, config) in [
            ("dce", PdceConfig::dce_only()),
            ("fce", PdceConfig::fce_only()),
            ("pde", PdceConfig::pde()),
            ("pfe", PdceConfig::pfe()),
        ] {
            let mut opt = prog.clone();
            let stats = optimize(&mut opt, &config).unwrap();
            assert!(!stats.truncated);
            assert_equivalent(&name, &prog, &opt, label);
            let report = check_improvement(&prog, &opt, &BetterOptions::default());
            assert!(
                report.holds(),
                "{name}/{label}: dominance violated: {:#?}",
                report.violations
            );
            // Idempotence.
            let once = canonical_string(&opt);
            optimize(&mut opt, &config).unwrap();
            assert_eq!(
                canonical_string(&opt),
                once,
                "{name}/{label} not a fixpoint"
            );
        }
    }
}

#[test]
fn auxiliary_passes_on_corpus() {
    for (name, prog) in corpus() {
        // Hoisting.
        let mut hoisted = prog.clone();
        split_critical_edges(&mut hoisted);
        hoist_assignments(&mut hoisted).unwrap();
        let mut split_ref = prog.clone();
        split_critical_edges(&mut split_ref);
        assert_equivalent(&name, &split_ref, &hoisted, "hoist");

        // LCM.
        let mut pre = prog.clone();
        split_critical_edges(&mut pre);
        lazy_code_motion(&mut pre).unwrap();
        assert_equivalent(&name, &split_ref, &pre, "lcm");

        // SCCP (+ cleanup).
        let mut folded = prog.clone();
        sccp(&mut folded);
        simplify_cfg(&mut folded);
        assert_equivalent(&name, &prog, &folded, "sccp+simplify");

        // LVN.
        let mut numbered = prog.clone();
        local_value_numbering(&mut numbered);
        assert_equivalent(&name, &prog, &numbered, "lvn");
    }
}

#[test]
fn full_stack_on_corpus() {
    for (name, prog) in corpus() {
        let mut opt = prog.clone();
        split_critical_edges(&mut opt);
        sccp(&mut opt);
        local_value_numbering(&mut opt);
        lazy_code_motion(&mut opt).unwrap();
        optimize(&mut opt, &PdceConfig::pfe()).unwrap();
        simplify_cfg(&mut opt);
        pdce::ir::validate::validate(&opt)
            .unwrap_or_else(|e| panic!("{name}: invalid after full stack: {e}"));
        assert_equivalent(&name, &prog, &opt, "full stack");
        // The print/parse round trip survives the full stack.
        let printed = pdce::ir::printer::print_program(&opt);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(
            canonical_string(&opt),
            canonical_string(&reparsed),
            "{name}"
        );
    }
}

/// A deterministic input vector for the corpus's free variables,
/// derived from `seed` (vector 0 is the historical `INPUTS`).
fn seeded_vector(seed: u64) -> [(&'static str, i64); 6] {
    if seed == 0 {
        return INPUTS;
    }
    let mut rng = pdce_rng::Rng::new(0x1d_5eed ^ seed);
    ["a", "b", "frame", "input", "c", "live"]
        .map(|name| (name, (rng.next_u64() % 201) as i64 - 100))
}

fn run_with(prog: &Program, inputs: &[(&str, i64)], seed: u64) -> Trace {
    let mut env = Env::with_values(prog, inputs);
    let mut oracle = SeededOracle::new(seed);
    run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 10_000,
        },
    )
}

fn replay_with(prog: &Program, inputs: &[(&str, i64)], decisions: Vec<usize>) -> Trace {
    let mut env = Env::with_values(prog, inputs);
    let mut oracle = ReplayOracle::new(decisions);
    run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 10_000,
        },
    )
}

/// Interpreter equivalence of `optimized` against `original` under
/// sixteen seeded input vectors (decision streams recorded and
/// replayed, so nondet branches line up).
fn assert_equivalent_16(name: &str, original: &Program, optimized: &Program, pass: &str) {
    for vseed in 0..16u64 {
        let inputs = seeded_vector(vseed);
        let t0 = run_with(original, &inputs, 11 + vseed);
        let t1 = replay_with(optimized, &inputs, t0.decisions.clone());
        assert_eq!(
            t0.outputs, t1.outputs,
            "{name}: {pass} changed semantics (vector {vseed})"
        );
        assert!(
            t1.executed_assignments <= t0.executed_assignments,
            "{name}: {pass} impaired vector {vseed}"
        );
    }
}

/// Differential batch oracle: `pdce opt` over the whole corpus emits
/// byte-identical stdout sequentially and with `--jobs 4`, and every
/// per-file section is interpreter-equivalent to its source under
/// sixteen seeded input vectors. This is the end-to-end check that the
/// parallel driver shards work without reordering or cross-talk.
#[test]
fn batch_cli_is_deterministic_and_semantics_preserving() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pdce"))
        .map(|p| p.to_string_lossy().into_owned())
        .collect();
    files.sort();

    for mode in ["pde", "pfe"] {
        let batch = |jobs: &str| {
            let out = std::process::Command::new(env!("CARGO_BIN_EXE_pdce"))
                .args(["opt", "--mode", mode, "--jobs", jobs])
                .args(&files)
                .output()
                .expect("binary runs");
            assert!(
                out.status.success(),
                "batch --mode {mode} --jobs {jobs} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8(out.stdout).expect("utf-8 stdout")
        };
        let sequential = batch("1");
        let sharded = batch("4");
        assert_eq!(
            sequential, sharded,
            "--mode {mode}: stdout must not depend on --jobs"
        );

        // Split the batch output back into per-file programs.
        let mut sections: Vec<(String, String)> = Vec::new();
        for line in sequential.lines() {
            if let Some(path) = line
                .strip_prefix("// ==== ")
                .and_then(|r| r.strip_suffix(" ===="))
            {
                sections.push((path.to_owned(), String::new()));
            } else {
                let (_, body) = sections.last_mut().expect("header precedes body");
                body.push_str(line);
                body.push('\n');
            }
        }
        let paths: Vec<&String> = sections.iter().map(|(p, _)| p).collect();
        assert_eq!(
            paths,
            files.iter().collect::<Vec<_>>(),
            "sections in argument order"
        );

        for (path, body) in &sections {
            let src = std::fs::read_to_string(path).expect("corpus file readable");
            let original = parse(&src).expect("corpus parses");
            let optimized =
                parse(body).unwrap_or_else(|e| panic!("{path}: batch output does not parse: {e}"));
            assert_equivalent_16(path, &original, &optimized, &format!("batch {mode}"));
        }
    }
}

/// The same sixteen-vector oracle on the in-process (sequential
/// library) path, for every driver mode — the reference the batch CLI
/// is compared against.
#[test]
fn drivers_preserve_semantics_under_seeded_vectors() {
    for (name, prog) in corpus() {
        for (label, config) in [("pde", PdceConfig::pde()), ("pfe", PdceConfig::pfe())] {
            let mut opt = prog.clone();
            optimize(&mut opt, &config).unwrap();
            assert_equivalent_16(&name, &prog, &opt, label);
        }
    }
}

/// Spot-check the headline effects per corpus file.
#[test]
fn corpus_effects() {
    let progs: std::collections::HashMap<String, Program> = corpus().into_iter().collect();

    // gcd: pfe empties the scratch/mirror chain from the loop; pde keeps
    // at least `trace` computable on the noisy path.
    let mut gcd = progs["gcd.pdce"].clone();
    let stats = optimize(&mut gcd, &PdceConfig::pfe()).unwrap();
    assert!(stats.eliminated_assignments >= 2, "scratch & mirror go");

    // state_machine: `render` leaves the dispatch header.
    let mut sm = progs["state_machine.pdce"].clone();
    optimize(&mut sm, &PdceConfig::pde()).unwrap();
    let header = sm.block_by_name("loop").unwrap();
    assert!(
        sm.block(header)
            .stmts
            .iter()
            .all(|s| pdce::ir::printer::print_stmt(&sm, s) != "render := frame * 17 + ticks"),
        "render must not be recomputed every tick"
    );

    // faint_webs: only pfe clears the u/v/w web.
    let mut fw_pde = progs["faint_webs.pdce"].clone();
    optimize(&mut fw_pde, &PdceConfig::pde()).unwrap();
    let mut fw_pfe = progs["faint_webs.pdce"].clone();
    optimize(&mut fw_pfe, &PdceConfig::pfe()).unwrap();
    assert!(fw_pfe.num_assignments() + 3 <= fw_pde.num_assignments());

    // accumulators: pde pushes each accumulator... they are loop-carried,
    // so they stay; but per-path dominance already checked. Just assert
    // both survive (they are genuinely live).
    let mut acc = progs["accumulators.pdce"].clone();
    optimize(&mut acc, &PdceConfig::pfe()).unwrap();
    assert!(acc.num_assignments() >= 5);
}
