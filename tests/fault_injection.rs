//! End-to-end fault injection through the real `pdce` binary.
//!
//! Each test spawns the CLI with a `FAULT_INJECT=<kind>:<site>:<nth>`
//! environment (the hook is compiled in unconditionally and costs one
//! relaxed load when unset) and asserts the acceptance contract of the
//! resilience ladder:
//!
//! * a one-shot pass panic is absorbed — the next rung retries and the
//!   output is bit-identical to an uninjected run;
//! * a persistent panic in sinking degrades to elimination-only, whose
//!   output is bit-identical to `--mode dce`;
//! * a persistent budget fault walks the whole ladder down to the
//!   identity transformation — the input comes back verbatim;
//! * an injected miscompile (decision bit-flip) is caught by
//!   translation validation and rolled back;
//! * a batch run over the corpus under injection still exits 0 and
//!   prints valid output for every file.

use std::io::Write;
use std::process::{Command, Stdio};

const FIG1: &str = "prog {
    block s  { goto n1 }
    block n1 { y := a + b; nondet n2 n3 }
    block n2 { y := 4; goto n4 }
    block n3 { out(y); goto n4 }
    block n4 { out(y); goto e }
    block e  { halt }
}";

/// Runs the binary with an optional `FAULT_INJECT` spec; returns
/// (stdout, stderr, exit code).
fn pdce_with_fault(fault: Option<&str>, args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pdce"));
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    // Never inherit a spec from the test runner's environment.
    cmd.env_remove("FAULT_INJECT").env_remove("TV");
    if let Some(spec) = fault {
        cmd.env("FAULT_INJECT", spec);
    }
    let mut child = cmd.spawn().expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn one_shot_pass_panic_recovers_bit_identically() {
    let (clean, _, code) = pdce_with_fault(None, &["opt"], FIG1);
    assert_eq!(code, 0);
    let (stdout, stderr, code) = pdce_with_fault(Some("panic:sink:1"), &["opt"], FIG1);
    assert_eq!(code, 0, "stderr: {stderr}");
    // The configured rung consumed the fault; the cold-solve rung
    // reruns from scratch and must produce the uninjected result.
    assert_eq!(stdout, clean, "recovered output must be bit-identical");
    assert!(stderr.contains("warning:"), "stderr: {stderr}");
    assert!(stderr.contains("degrading to"), "stderr: {stderr}");
}

#[test]
fn persistent_sink_panic_degrades_to_elimination_only() {
    let (dce_only, _, code) = pdce_with_fault(None, &["opt", "--mode", "dce"], FIG1);
    assert_eq!(code, 0);
    let (stdout, stderr, code) = pdce_with_fault(Some("panic:sink:*"), &["opt", "--stats"], FIG1);
    assert_eq!(code, 0, "stderr: {stderr}");
    // Ladder prediction: every sinking rung dies at the sink site, so
    // the surviving rung is elimination-only — exactly `--mode dce`.
    assert_eq!(stdout, dce_only, "must match the documented ladder rung");
    assert!(
        stderr.contains("degraded:    elimination-only"),
        "stderr: {stderr}"
    );
}

#[test]
fn persistent_budget_fault_walks_down_to_identity() {
    let (stdout, stderr, code) = pdce_with_fault(Some("budget:solve:*"), &["opt", "--stats"], FIG1);
    assert_eq!(code, 0, "stderr: {stderr}");
    // Every rung needs the solver, so the ladder bottoms out at the
    // identity transformation: the parsed input printed verbatim.
    let expected = pdce::ir::printer::print_program(&pdce::ir::parser::parse(FIG1).unwrap());
    assert_eq!(stdout, expected, "identity rung must echo the input");
    assert!(stderr.contains("degraded:    identity"), "stderr: {stderr}");
    assert!(stderr.contains("budget exhaustion"), "stderr: {stderr}");
}

#[test]
fn injected_miscompile_is_caught_by_translation_validation() {
    // Without validation the bit-flip dooms a live assignment and the
    // miscompiled output survives — that is the attack surface.
    let (clean, _, _) = pdce_with_fault(None, &["opt"], FIG1);
    let (flipped, _, code) = pdce_with_fault(Some("bitflip:dead:1"), &["opt"], FIG1);
    assert_eq!(code, 0);
    assert_ne!(flipped, clean, "the injected flip must change the output");
    // With validation the round is rejected and rolled back.
    let (stdout, stderr, code) = pdce_with_fault(
        Some("bitflip:dead:1"),
        &["opt", "--validate-semantics=6", "--stats"],
        FIG1,
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stderr.contains("1 tv rollback(s)"), "stderr: {stderr}");
    assert!(
        stderr.contains("translation validation failed"),
        "stderr: {stderr}"
    );
    // The rolled-back result is the last-good program: the input.
    let expected = pdce::ir::printer::print_program(&pdce::ir::parser::parse(FIG1).unwrap());
    assert_eq!(stdout, expected, "rollback must restore last-good");
}

#[test]
fn clean_runs_pay_nothing_and_match_under_validation() {
    let (clean, _, _) = pdce_with_fault(None, &["opt"], FIG1);
    let (validated, stderr, code) =
        pdce_with_fault(None, &["opt", "--validate-semantics", "--stats"], FIG1);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert_eq!(validated, clean, "validation must not change a good run");
    assert!(stderr.contains("0 tv rollback(s)"), "stderr: {stderr}");
}

#[test]
fn batch_over_corpus_survives_injection() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.unwrap().path().display().to_string())
        .filter(|p| p.ends_with(".pdce"))
        .collect();
    files.sort();
    assert!(files.len() >= 6, "corpus shrank unexpectedly");
    let mut args = vec!["opt", "--jobs", "2"];
    args.extend(files.iter().map(String::as_str));
    let (clean, _, code) = pdce_with_fault(None, &args, "");
    assert_eq!(code, 0);
    let (stdout, stderr, code) = pdce_with_fault(Some("panic:dce:1"), &args, "");
    assert_eq!(code, 0, "stderr: {stderr}");
    // Every file is present, in argument order, and parses — the
    // injected panic degraded one file's round, it did not kill the
    // batch or corrupt any sibling.
    let mut last = 0;
    for path in &files {
        let header = format!("// ==== {path} ====");
        let at = stdout.find(&header).unwrap_or_else(|| {
            panic!("missing section for {path}; stderr: {stderr}");
        });
        assert!(at >= last, "sections out of argument order");
        last = at;
    }
    for section in stdout.split("// ==== ").skip(1) {
        let body = &section[section.find('\n').unwrap() + 1..];
        pdce::ir::parser::parse(body).expect("every batch section parses");
    }
    // The recovered batch output matches the uninjected run: the only
    // file that consumed the one-shot fault retried on the next rung.
    assert_eq!(stdout, clean, "one-shot fault must not change results");
}
