//! End-to-end reproduction of every figure of the paper.
//!
//! The supplied scan's figures are OCR-degraded, so each program below is
//! a reconstruction that exhibits *exactly the behaviour the prose
//! describes* (which transformation fires, what the result looks like,
//! and which effects are second-order). Every test also checks the
//! `better` relation of Definition 3.6 (the result dominates the input
//! on every corresponding path).

use pdce::core::better::{check_improvement, BetterOptions};
use pdce::core::driver::{optimize, pde, pfe, PdceConfig};
use pdce::core::elim::{eliminate_once, Mode};
use pdce::ir::parser::parse;
use pdce::ir::printer::{canonical_string, diff, structural_eq};
use pdce::ir::Program;

fn assert_result(got: &Program, want_src: &str) {
    let want = parse(want_src).unwrap();
    assert!(
        structural_eq(got, &want),
        "result mismatch:\n{}\ngot:\n{}",
        diff(got, &want),
        canonical_string(got)
    );
}

fn assert_improves(original: &str, optimized: &Program) {
    let orig = parse(original).unwrap();
    let report = check_improvement(&orig, optimized, &BetterOptions::default());
    assert!(
        report.holds(),
        "Definition 3.6 dominance violated: {:#?}",
        report.violations
    );
}

/// Figures 1 → 2: the motivating example. `y := a + b` is dead on the
/// branch that redefines `y` and alive on the other; sinking it to both
/// branch entries makes the dead copy removable.
#[test]
fn fig_1_2_motivating_example() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";
    let mut p = parse(src).unwrap();
    let stats = pde(&mut p).unwrap();
    assert_result(
        &p,
        "prog {
            block s  { goto n1 }
            block n1 { nondet n2 n3 }
            block n2 { y := 4; goto n4 }
            block n3 { y := a + b; out(y); goto n4 }
            block n4 { out(y); goto e }
            block e  { halt }
        }",
    );
    assert_eq!(stats.eliminated_assignments, 1);
    assert_improves(src, &p);
}

/// Figures 3 → 4: the "loop invariant" two-instruction fragment. The
/// first instruction defines an operand of the second, so loop-invariant
/// code motion cannot touch it; pde removes the *second* assignment from
/// the loop first (it is partially dead past the loop), which unblocks
/// the first — a second-order effect needing multiple global rounds.
#[test]
fn fig_3_4_second_order_loop() {
    let src = "prog {
        block s { goto h }
        block h { y := a + b; c := y - d; nondet hb after }
        block hb { x := x + 1; goto h }
        block after { nondet n7 n8 }
        block n7 { out(c); goto e }
        block n8 { out(x); goto e }
        block e { halt }
    }";
    let mut p = parse(src).unwrap();
    let stats = pde(&mut p).unwrap();
    assert_result(
        &p,
        "prog {
            block s { goto h }
            block h { nondet hb after }
            block hb { x := x + 1; goto h }
            block after { nondet n7 n8 }
            block n7 { y := a + b; c := y - d; out(c); goto e }
            block n8 { out(x); goto e }
            block e { halt }
        }",
    );
    assert!(
        stats.rounds >= 3,
        "second-order effect needs several rounds, got {}",
        stats.rounds
    );
    assert_improves(src, &p);
    // The loop body now only contains the genuinely loop-carried work.
    let h = p.block_by_name("h").unwrap();
    assert!(p.block(h).stmts.is_empty());
}

/// Figures 5 → 6: irreducible control flow. The assignment moves across
/// the two-entry (irreducible) region, is eliminated on the branch that
/// redefines `x`, and lands in the synthetic node on the loop-entry
/// edge. It remains *partially* dead there: eliminating it would demand
/// sinking into the second loop, which would impair executions — pde
/// must leave it alone (Theorem 5.2's "no impairment" guarantee).
#[test]
fn fig_5_6_irreducible_loops() {
    let src = "prog {
        block n1 { x := a + b; nondet n2 n3 }
        block n2 { nondet n3 n4 }
        block n3 { nondet n2 n4 }
        block n4 { nondet n5 n6 }
        block n5 { nondet n7 n8 }
        block n6 { x := c + 1; out(x); goto n10 }
        block n7 { y := y + x; goto n9 }
        block n8 { goto n9 }
        block n9 { nondet n5 n10 }
        block n10 { out(y); goto e }
        block e { halt }
    }";
    let mut p = parse(src).unwrap();
    let stats = pde(&mut p).unwrap();
    // The graph is genuinely irreducible.
    assert!(!pdce::ir::CfgView::new(&parse(src).unwrap()).is_reducible());

    // x := a+b left n1 and was eliminated on the n6 path.
    let n1 = p.block_by_name("n1").unwrap();
    assert!(p.block(n1).stmts.is_empty(), "assignment must leave n1");
    let n6 = p.block_by_name("n6").unwrap();
    assert_eq!(p.block(n6).stmts.len(), 2, "dead copy at n6 removed");
    // It sits in the synthetic node S_n4_n5 on the loop-entry edge.
    let s45 = p
        .block_by_name("S_n4_n5")
        .expect("edge (n4,n5) was critical and split");
    assert_eq!(p.block(s45).stmts.len(), 1);
    assert_eq!(
        pdce::ir::printer::print_stmt(&p, &p.block(s45).stmts[0]),
        "x := a + b"
    );
    // And pde does NOT push it into the loop (header n5 stays empty).
    let n5 = p.block_by_name("n5").unwrap();
    assert!(p.block(n5).stmts.is_empty(), "must not sink into the loop");
    let n7 = p.block_by_name("n7").unwrap();
    assert_eq!(p.block(n7).stmts.len(), 1, "loop body unchanged");
    assert!(stats.synthetic_blocks > 0);
    assert_improves(src, &p);
}

/// Figure 7: m-to-n sinking. Occurrences on both arms merge at the join
/// and sink simultaneously; on the arm that never uses `a` the
/// assignment disappears entirely — impossible when treating occurrences
/// one at a time (the Feigen et al. limitation).
#[test]
fn fig_7_m_to_n_sinking() {
    let src = "prog {
        block s  { nondet n1 n2 }
        block n1 { a := a + 1; goto n3 }
        block n2 { y := c + d; a := a + 1; goto n3 }
        block n3 { nondet n4 n5 }
        block n4 { out(a); goto e }
        block n5 { out(b); goto e }
        block e  { halt }
    }";
    let mut p = parse(src).unwrap();
    pde(&mut p).unwrap();
    assert_result(
        &p,
        "prog {
            block s  { nondet n1 n2 }
            block n1 { goto n3 }
            block n2 { goto n3 }
            block n3 { nondet n4 n5 }
            block n4 { a := a + 1; out(a); goto e }
            block n5 { out(b); goto e }
            block e  { halt }
        }",
    );
    assert_improves(src, &p);
}

/// Figure 8: critical edges. Without splitting, `x := a + b` cannot be
/// eliminated (moving it to n2 would add a computation to the n3 path);
/// the synthetic node `S_n1_n2` unblocks it.
#[test]
fn fig_8_critical_edge() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { x := a + b; nondet n2 n3 }
        block n3 { x := 5; goto n2 }
        block n2 { out(x); goto e }
        block e  { halt }
    }";
    let mut p = parse(src).unwrap();
    let stats = pde(&mut p).unwrap();
    assert_eq!(stats.synthetic_blocks, 1);
    assert_result(
        &p,
        "prog {
            block s  { goto n1 }
            block n1 { nondet S_n1_n2 n3 }
            block S_n1_n2 { x := a + b; goto n2 }
            block n3 { x := 5; goto n2 }
            block n2 { out(x); goto e }
            block e  { halt }
        }",
    );
    assert_improves(src, &p);
}

/// Figure 9: faint but not dead. `x := x + 1` in a loop, never observed:
/// dead-code elimination (and hence pde) keeps it; faint-code
/// elimination (pfe) removes it.
#[test]
fn fig_9_faint_not_dead() {
    let src = "prog {
        block s { goto l }
        block l { x := x + 1; nondet l d }
        block d { goto e }
        block e { halt }
    }";
    let mut p = parse(src).unwrap();
    pde(&mut p).unwrap();
    assert_eq!(p.num_assignments(), 1, "pde keeps the faint increment");

    let mut p = parse(src).unwrap();
    let stats = pfe(&mut p).unwrap();
    assert_eq!(p.num_assignments(), 0, "pfe removes it");
    assert_eq!(stats.eliminated_assignments, 1);
    assert_improves(src, &p);
}

/// Figure 10: sinking–sinking. `y := a + b` is blocked by `a := c`;
/// only after `a := c` sinks (to its use in n5) can `y := a + b` follow
/// — and then dce removes its copy on the redefining arm.
#[test]
fn fig_10_sinking_sinking() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; goto n2 }
        block n2 { a := c; nondet n3 n4 }
        block n3 { y := d; goto n5 }
        block n4 { goto n5 }
        block n5 { x := a + c; goto n6 }
        block n6 { out(x + y); goto e }
        block e  { halt }
    }";
    let mut p = parse(src).unwrap();
    let stats = pde(&mut p).unwrap();
    assert_result(
        &p,
        "prog {
            block s  { goto n1 }
            block n1 { goto n2 }
            block n2 { nondet n3 n4 }
            block n3 { y := d; goto n5 }
            block n4 { y := a + b; goto n5 }
            block n5 { goto n6 }
            block n6 { a := c; x := a + c; out(x + y); goto e }
            block e  { halt }
        }",
    );
    assert!(stats.rounds >= 2, "second-order: needs ≥ 2 rounds");
    assert_improves(src, &p);
    // Note: the paper's Figure 10(b) leaves `a := c; x := a + c` in node
    // 5; our fixpoint carries them one (unconditional) block further into
    // node 6. The two placements have identical per-path occurrence
    // counts — the optimal program is only unique "up to some reordering
    // in basic blocks" (Section 3).
}

/// Figure 11: elimination–sinking. `z := y + 1` blocks the sinking of
/// `y := a + b` but is itself dead (z is redefined before use); its
/// *elimination* unblocks the sinking.
#[test]
fn fig_11_elimination_sinking() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; z := y + 1; z := 2; nondet n4 n5 }
        block n4 { y := 0; out(z); goto e }
        block n5 { out(y); goto e }
        block e  { halt }
    }";
    let mut p = parse(src).unwrap();
    let stats = pde(&mut p).unwrap();
    assert_result(
        &p,
        "prog {
            block s  { goto n1 }
            block n1 { nondet n4 n5 }
            block n4 { z := 2; out(z); goto e }
            block n5 { y := a + b; out(y); goto e }
            block e  { halt }
        }",
    );
    // Eliminated: the dead z := y + 1 (the unblocking step), the sunk
    // copy of y := a + b on the n4 arm, and y := 0 (dead once y is no
    // longer observed on that arm).
    assert!(stats.eliminated_assignments >= 3);
    assert_improves(src, &p);
}

/// Figure 12: elimination–elimination. The dead `y := a + b` at n4 must
/// go before `a := c + 1` becomes dead: two dce passes for pde, a single
/// fce pass for pfe (first-order for faint, Section 4.4).
#[test]
fn fig_12_elimination_elimination() {
    let src = "prog {
        block s  { a := c + 1; nondet n3 n4 }
        block n3 { goto n5 }
        block n4 { y := a + b; goto n5 }
        block n5 { y := c + d; out(y); goto e }
        block e  { halt }
    }";
    let expected = "prog {
        block s  { nondet n3 n4 }
        block n3 { goto n5 }
        block n4 { goto n5 }
        block n5 { y := c + d; out(y); goto e }
        block e  { halt }
    }";
    // Dead mode: strictly two passes.
    let mut p = parse(src).unwrap();
    assert_eq!(eliminate_once(&mut p, Mode::Dead), 1);
    assert_eq!(eliminate_once(&mut p, Mode::Dead), 1);
    assert_result(&p, expected);
    // Faint mode: one pass removes both.
    let mut p = parse(src).unwrap();
    assert_eq!(eliminate_once(&mut p, Mode::Faint), 2);
    assert_result(&p, expected);
    // Full drivers agree.
    let mut p = parse(src).unwrap();
    pde(&mut p).unwrap();
    assert_result(&p, expected);
    assert_improves(src, &p);
}

/// Figure 13: sinking candidates. (The fine-grained per-occurrence
/// checks live in `pdce-core`'s local-predicate unit tests; this is the
/// end-to-end view: only unblocked trailing occurrences move.)
#[test]
fn fig_13_sinking_candidates() {
    let src = "prog {
        block s { y := a + b; a := c; x := 3 * y; nondet n1 n2 }
        block n1 { out(x); goto e }
        block n2 { out(a); goto e }
        block e { halt }
    }";
    let mut p = parse(src).unwrap();
    let stats = pde(&mut p).unwrap();
    // Round 1: y := a + b is not a candidate (blocked by both a := c and
    // x := 3 * y), but those two are and sink to their uses. Round 2:
    // the unblocked y := a + b follows, dying on the n2 arm — the full
    // sinking-sinking cascade.
    assert_result(
        &p,
        "prog {
            block s { nondet n1 n2 }
            block n1 { y := a + b; x := 3 * y; out(x); goto e }
            block n2 { a := c; out(a); goto e }
            block e { halt }
        }",
    );
    assert!(stats.rounds >= 2);
    assert_improves(src, &p);
}

/// Cross-cutting: pfe subsumes pde on every figure program (Theorem 5.2
/// orders the universes: faint elimination is strictly more powerful).
#[test]
fn pfe_never_worse_than_pde_on_figures() {
    let sources = [
        "prog { block s { goto n1 } block n1 { y := a + b; nondet n2 n3 }
          block n2 { y := 4; goto n4 } block n3 { out(y); goto n4 }
          block n4 { out(y); goto e } block e { halt } }",
        "prog { block s { goto l } block l { x := x + 1; nondet l d }
          block d { goto e } block e { halt } }",
        "prog { block s { a := c + 1; nondet n3 n4 } block n3 { goto n5 }
          block n4 { y := a + b; goto n5 } block n5 { y := c + d; out(y); goto e }
          block e { halt } }",
    ];
    for src in sources {
        let mut with_pde = parse(src).unwrap();
        pde(&mut with_pde).unwrap();
        let mut with_pfe = parse(src).unwrap();
        pfe(&mut with_pfe).unwrap();
        assert!(
            with_pfe.num_assignments() <= with_pde.num_assignments(),
            "pfe left more assignments than pde on:\n{src}"
        );
    }
}

/// Cross-cutting: dce-only and fce-only are strictly weaker than their
/// sinking counterparts on the motivating example.
#[test]
fn sinking_strictly_extends_elimination() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";
    for (weak, strong) in [
        (PdceConfig::dce_only(), PdceConfig::pde()),
        (PdceConfig::fce_only(), PdceConfig::pfe()),
    ] {
        let mut pw = parse(src).unwrap();
        optimize(&mut pw, &weak).unwrap();
        let mut ps = parse(src).unwrap();
        optimize(&mut ps, &strong).unwrap();
        // The weak variant removes nothing here; the strong one kills the
        // partially dead copy on the redefining arm.
        assert_eq!(pw.num_assignments(), 2);
        assert_eq!(ps.num_assignments(), 2); // sunk: one copy per arm... but
                                             // counts per path drop:
        let report = check_improvement(&pw, &ps, &BetterOptions::default());
        assert!(report.holds());
    }
}
