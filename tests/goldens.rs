//! Golden-snapshot tests: the canonical optimized form of every corpus
//! program, per driver mode, pinned under `tests/goldens/`.
//!
//! These catch *any* output drift — a solver-scheduling change, a
//! tie-break reorder, a printer tweak — that the semantic oracles would
//! accept. Because both solver strategies must produce identical
//! programs (see `tests/properties.rs`), the snapshots are also checked
//! under the non-default strategy.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test goldens
//! ```

use std::path::{Path, PathBuf};

use pdce::core::driver::{optimize, PdceConfig};
use pdce::dfa::{with_strategy, SolverStrategy};
use pdce::ir::parser::parse;
use pdce::ir::printer::canonical_string;

fn corpus_files() -> Vec<PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pdce"))
        .collect();
    assert!(out.len() >= 6, "corpus went missing?");
    out.sort();
    out
}

fn golden_dir() -> PathBuf {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens")).to_path_buf()
}

fn updating() -> bool {
    std::env::var_os("UPDATE_GOLDENS").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Compares `got` against `tests/goldens/<name>`, or rewrites the file
/// when `UPDATE_GOLDENS=1` is set.
fn check_golden(name: &str, got: &str) {
    let path = golden_dir().join(name);
    if updating() {
        std::fs::create_dir_all(golden_dir()).expect("goldens dir");
        std::fs::write(&path, got).expect("golden writable");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; refresh with UPDATE_GOLDENS=1 cargo test --test goldens",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "snapshot drift in {name}; if intentional, refresh with \
         UPDATE_GOLDENS=1 cargo test --test goldens"
    );
}

#[test]
fn corpus_optimized_snapshots() {
    for file in corpus_files() {
        let stem = file.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&file).expect("corpus file readable");
        for (label, config) in [("pde", PdceConfig::pde()), ("pfe", PdceConfig::pfe())] {
            let mut prog = parse(&src).expect("corpus parses");
            optimize(&mut prog, &config).unwrap();
            check_golden(&format!("{stem}.{label}.golden"), &canonical_string(&prog));
        }
    }
}

/// The snapshots hold under *every* solver strategy: goldens are a
/// property of the fixpoint, not of the worklist order used to reach it.
#[test]
fn snapshots_are_strategy_independent() {
    for file in corpus_files() {
        let stem = file.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&file).expect("corpus file readable");
        for (label, config) in [("pde", PdceConfig::pde()), ("pfe", PdceConfig::pfe())] {
            for strategy in [
                SolverStrategy::Fifo,
                SolverStrategy::Priority,
                SolverStrategy::Sparse,
            ] {
                let mut prog = parse(&src).expect("corpus parses");
                with_strategy(strategy, || optimize(&mut prog, &config)).unwrap();
                check_golden(&format!("{stem}.{label}.golden"), &canonical_string(&prog));
            }
        }
    }
}
