//! The Section 7 heuristics: truncated iteration and hot-area
//! localization. Both must stay semantics-preserving and never impair
//! an execution — every intermediate program of the exhaustive
//! iteration already has those properties, so cutting early or
//! restricting scope only costs optimality, never correctness.

use pdce::core::better::{check_improvement, BetterOptions};
use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce::ir::parser::parse;
use pdce::ir::printer::{canonical_string, structural_eq};
use pdce::progen::{second_order_tower, structured, GenConfig};

#[test]
fn truncation_stops_early_but_stays_sound() {
    let tower = second_order_tower(16);

    let mut full = tower.clone();
    let full_stats = optimize(&mut full, &PdceConfig::pde()).unwrap();
    assert!(full_stats.rounds > 10);
    assert!(!full_stats.truncated);

    let mut cut = tower.clone();
    let cut_stats = optimize(&mut cut, &PdceConfig::pde().truncating_after(3)).unwrap();
    assert!(cut_stats.truncated);
    assert_eq!(cut_stats.rounds, 3);
    // Less was achieved...
    assert!(cut_stats.eliminated_assignments < full_stats.eliminated_assignments);
    // ...but the partial result still dominates the input per path.
    let report = check_improvement(&tower, &cut, &BetterOptions::default());
    assert!(report.holds(), "{:#?}", report.violations);
    // And semantics are intact.
    let inputs = [("c", 9i64)];
    let mut env = Env::with_values(&tower, &inputs);
    let mut oracle = SeededOracle::new(3);
    let t0 = run(&tower, &mut env, &mut oracle, ExecLimits::default());
    let mut env = Env::with_values(&cut, &inputs);
    let mut oracle = ReplayOracle::new(t0.decisions.clone());
    let t1 = run(&cut, &mut env, &mut oracle, ExecLimits::default());
    assert_eq!(t0.outputs, t1.outputs);
    assert!(t1.executed_assignments <= t0.executed_assignments);
}

#[test]
fn full_region_equals_unrestricted() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";
    let all_blocks = ["s", "n1", "n2", "n3", "n4", "e"];
    let mut restricted = parse(src).unwrap();
    optimize(&mut restricted, &PdceConfig::pde().with_region(all_blocks)).unwrap();
    let mut unrestricted = parse(src).unwrap();
    optimize(&mut unrestricted, &PdceConfig::pde()).unwrap();
    assert!(structural_eq(&restricted, &unrestricted));
}

#[test]
fn cold_region_leaves_hot_code_alone() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";
    // Region excludes n1 (where the only candidate lives): nothing moves.
    let mut p = parse(src).unwrap();
    let stats = optimize(&mut p, &PdceConfig::pde().with_region(["n2", "n3", "n4"])).unwrap();
    assert_eq!(stats.eliminated_assignments, 0);
    // (y := 4 is re-inserted at its own block exit — an in-place no-op
    // that still counts as one removal/insertion pair.)
    assert!(structural_eq(&p, &parse(src).unwrap()));
}

#[test]
fn partial_region_gets_partial_benefit() {
    // Two independent Figure-1 gadgets; the region covers only the first.
    let src = "prog {
        block s  { goto a1 }
        block a1 { y := a + b; nondet a2 a3 }
        block a2 { y := 4; goto b1 }
        block a3 { out(y); goto b1 }
        block b1 { z := c + d; nondet b2 b3 }
        block b2 { z := 7; goto b4 }
        block b3 { out(z); goto b4 }
        block b4 { goto e }
        block e  { halt }
    }";
    let mut p = parse(src).unwrap();
    let stats = optimize(&mut p, &PdceConfig::pde().with_region(["a1", "a2", "a3"])).unwrap();
    // The first gadget is optimized...
    let a1 = p.block_by_name("a1").unwrap();
    assert!(p.block(a1).stmts.is_empty(), "y := a+b sunk out of a1");
    assert!(stats.eliminated_assignments >= 1);
    // ...the second is untouched.
    let b1 = p.block_by_name("b1").unwrap();
    assert_eq!(p.block(b1).stmts.len(), 1, "z := c+d stays in b1");
}

#[test]
fn region_restriction_is_sound_on_random_programs() {
    for seed in 0..20u64 {
        let prog = structured(&GenConfig {
            seed,
            target_blocks: 20,
            nondet: true,
            ..GenConfig::default()
        });
        // Pick an arbitrary half of the blocks as the "hot" region.
        let region: Vec<String> = prog
            .node_ids()
            .filter(|n| n.index() % 2 == 0)
            .map(|n| prog.block(n).name.clone())
            .collect();
        let mut restricted = prog.clone();
        let stats = optimize(&mut restricted, &PdceConfig::pde().with_region(region)).unwrap();
        assert!(!stats.truncated);
        // Sound: dominated per path and trace-equal.
        let report = check_improvement(&prog, &restricted, &BetterOptions::default());
        assert!(report.holds(), "seed {seed}: {:#?}", report.violations);
        let mut env = Env::with_values(&prog, &[("v0", 2)]);
        let mut oracle = SeededOracle::new(11);
        let t0 = run(&prog, &mut env, &mut oracle, ExecLimits::default());
        let mut env = Env::with_values(&restricted, &[("v0", 2)]);
        let mut oracle = ReplayOracle::new(t0.decisions.clone());
        let t1 = run(&restricted, &mut env, &mut oracle, ExecLimits::default());
        assert_eq!(t0.outputs, t1.outputs, "seed {seed}");
        assert!(t1.executed_assignments <= t0.executed_assignments);
    }
}

/// The ⊑ chain original ⊒ truncated ⊒ full demonstrates transitivity of
/// Definition 3.6's pre-order on real optimizer outputs.
#[test]
fn better_relation_chains_through_truncation() {
    use pdce::core::better::is_better;
    let tower = second_order_tower(10);
    let mut split = tower.clone();
    pdce::ir::edgesplit::split_critical_edges(&mut split);
    let mut cut = split.clone();
    optimize(&mut cut, &PdceConfig::pde().truncating_after(3)).unwrap();
    let mut full = split.clone();
    optimize(&mut full, &PdceConfig::pde()).unwrap();
    let opts = BetterOptions::default();
    assert!(is_better(&cut, &split, &opts).holds(), "cut ⊑ original");
    assert!(is_better(&full, &cut, &opts).holds(), "full ⊑ cut");
    assert!(
        is_better(&full, &split, &opts).holds(),
        "transitively full ⊑ original"
    );
}

#[test]
fn truncated_run_is_resumable() {
    // Running the truncated config repeatedly eventually reaches the
    // full fixpoint — the iteration is cut, not broken.
    let tower = second_order_tower(8);
    let mut full = tower.clone();
    optimize(&mut full, &PdceConfig::pde()).unwrap();

    let mut step = tower.clone();
    let config = PdceConfig::pde().truncating_after(2);
    for _ in 0..40 {
        let stats = optimize(&mut step, &config).unwrap();
        if !stats.truncated {
            break;
        }
    }
    assert_eq!(canonical_string(&step), canonical_string(&full));
}
