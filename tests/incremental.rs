//! Differential oracle for incremental re-analysis: warm-started
//! (seeded) solving must be indistinguishable from cold solving.
//!
//! Three layers of evidence, strongest first:
//!
//! * **End-to-end**: full pde/pfe runs with incremental re-analysis on
//!   and off emit byte-identical programs on 200 generated CFGs, under
//!   both solver strategies. Every round past the first warm-starts its
//!   dead/faint/delay fixpoints, so any seeding bug that changes a
//!   single bit shows up as a placement or elimination divergence.
//! * **Analysis-level**: after random statement-list mutations, each
//!   seeded `compute_seeded` fixpoint is bit-identical to a cold one.
//! * **Change tracking**: the `ChangeSet` dirty-set, widened by
//!   [`affected_closure`], is a superset of the blocks whose cold
//!   fixpoint actually moved — the invariant the warm-start contract
//!   rests on.

use pdce::core::driver::{optimize, PdceConfig};
use pdce::core::{DeadSolution, DelayInfo, FaintSolution, LocalInfo, PatternTable};
use pdce::dfa::{affected_closure, with_incremental, with_strategy, Direction, SolverStrategy};
use pdce::ir::printer::canonical_string;
use pdce::ir::{CfgView, NodeId, Program, Var};
use pdce::progen::{structured, tangled, GenConfig};
use pdce_rng::Rng;

const CASES: usize = 48;

/// Distinct program seeds per property, derived deterministically.
/// Salts are disjoint from the ones `tests/properties.rs` uses.
fn seeds(salt: u64) -> Vec<u64> {
    let mut rng = Rng::new(0x1c2e_7000 ^ salt);
    (0..CASES).map(|_| rng.next_u64()).collect()
}

fn small_config(seed: u64, nondet: bool) -> GenConfig {
    GenConfig {
        seed,
        target_blocks: 18,
        num_vars: 5,
        stmts_per_block: (1, 3),
        out_prob: 0.25,
        loop_prob: 0.3,
        max_depth: 3,
        expr_depth: 2,
        nondet,
    }
}

/// Applies one shape-preserving statement-list mutation through
/// [`Program::stmts_mut`] (so the change log records it) and returns
/// the block it touched, or `None` if the program has no statements.
fn mutate_stmts(p: &mut Program, rng: &mut Rng) -> Option<NodeId> {
    let candidates: Vec<NodeId> = p
        .node_ids()
        .filter(|&n| !p.block(n).stmts.is_empty())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let n = candidates[rng.next_u64() as usize % candidates.len()];
    let kind = rng.next_u64() % 3;
    let stmts = p.stmts_mut(n);
    let i = rng.next_u64() as usize % stmts.len();
    match kind {
        0 => {
            stmts.remove(i);
        }
        1 => {
            let s = stmts[i];
            stmts.push(s);
        }
        _ => {
            let mid = i.max(1) % stmts.len().max(1);
            stmts.rotate_left(mid);
        }
    }
    Some(n)
}

/// Full pde/pfe runs with warm-start seeding enabled and disabled emit
/// byte-identical programs on 200 generator-seeded CFGs (every fourth
/// one irreducible), under all three solver strategies. Rounds past the
/// first warm-start every analysis, so this exercises seeding across
/// all rounds of real optimizer runs.
#[test]
fn incremental_and_cold_optimizers_agree_on_200_cfgs() {
    const STRATEGIES: [SolverStrategy; 3] = [
        SolverStrategy::Fifo,
        SolverStrategy::Priority,
        SolverStrategy::Sparse,
    ];

    let mut rng = Rng::new(0x9a9e_50de);
    for case in 0..200usize {
        let seed = rng.next_u64();
        let p = if case % 4 == 3 {
            tangled(&small_config(seed, true), 6)
        } else {
            structured(&small_config(seed, case % 2 == 0))
        };
        for config in [PdceConfig::pde(), PdceConfig::pfe()] {
            for strategy in STRATEGIES {
                let printed = [true, false].map(|incremental| {
                    let mut q = p.clone();
                    with_strategy(strategy, || {
                        with_incremental(incremental, || optimize(&mut q, &config))
                    })
                    .unwrap();
                    canonical_string(&q)
                });
                assert_eq!(
                    printed[0], printed[1],
                    "incremental changed {:?} output under {strategy:?} (case {case})",
                    config.mode
                );
            }
        }
    }
}

/// After a random sequence of statement-list mutations, every seeded
/// analysis fixpoint is bit-identical to a cold re-solve of the
/// mutated program: dead (backward ∩), faint (boolean network), and
/// delayability (forward ∩, including the derived insertion points).
#[test]
fn seeded_analyses_match_cold_after_random_mutations() {
    for (case, seed) in seeds(1).into_iter().enumerate() {
        let mut rng = Rng::new(seed ^ 0xa5a5);
        let mut p = if case % 4 == 3 {
            tangled(&small_config(seed, true), 6)
        } else {
            structured(&small_config(seed, case % 2 == 0))
        };
        let view = CfgView::new(&p);
        let table0 = PatternTable::build(&p);
        let local0 = LocalInfo::compute(&p, &table0);
        let prev_dead = DeadSolution::compute(&p, &view);
        let prev_faint = FaintSolution::compute(&p, &view);
        let prev_delay = DelayInfo::compute(&p, &view, &table0, &local0);

        let rev = p.revision();
        for _ in 0..3 {
            mutate_stmts(&mut p, &mut rng);
        }
        let cs = p
            .changes_since(rev)
            .expect("stmts_mut keeps the log contiguous");
        assert!(!cs.structural(), "stmts_mut must not report structural");
        let dirty = cs.dirty_blocks();

        let cold = DeadSolution::compute(&p, &view);
        let warm = DeadSolution::compute_seeded(&p, &view, &prev_dead, dirty);
        for n in p.node_ids() {
            assert_eq!(
                cold.at_entry(n),
                warm.at_entry(n),
                "dead entry (case {case})"
            );
            assert_eq!(cold.at_exit(n), warm.at_exit(n), "dead exit (case {case})");
        }

        // Statement edits changed the instruction arena; refresh the
        // layout the way `AnalysisCache::sync` does on stmt-local deltas.
        let view = view.relayout(&p);
        let cold_f = FaintSolution::compute(&p, &view);
        let warm_f = FaintSolution::compute_seeded(&p, &view, &prev_faint, dirty);
        for n in p.node_ids() {
            for v in (0..p.num_vars()).map(Var::from_index) {
                assert_eq!(
                    cold_f.faint_at_entry(n, v),
                    warm_f.faint_at_entry(n, v),
                    "faint (case {case})"
                );
            }
        }

        let table = PatternTable::build(&p);
        let local = LocalInfo::compute(&p, &table);
        let cold_d = DelayInfo::compute(&p, &view, &table, &local);
        let warm_d = DelayInfo::compute_seeded(&p, &view, &table, &local, &prev_delay, dirty);
        assert_eq!(cold_d.n_delayed, warm_d.n_delayed, "case {case}");
        assert_eq!(cold_d.x_delayed, warm_d.x_delayed, "case {case}");
        assert_eq!(cold_d.n_insert, warm_d.n_insert, "case {case}");
        assert_eq!(cold_d.x_insert, warm_d.x_insert, "case {case}");
    }
}

/// Replaying a random mutation sequence yields a dirty-set whose
/// dependence-frontier closure is a superset of the blocks whose
/// cold-solve fixpoint actually changed. Deadness is backward, so the
/// frontier of an edit reaches transitive *predecessors*.
#[test]
fn changeset_closure_covers_all_fixpoint_changes() {
    for (case, seed) in seeds(2).into_iter().enumerate() {
        let mut rng = Rng::new(seed ^ 0x5a5a);
        let mut p = structured(&small_config(seed, case % 2 == 0));
        let view = CfgView::new(&p);
        let before = DeadSolution::compute(&p, &view);

        let rev = p.revision();
        let rounds = 1 + (rng.next_u64() % 4) as usize;
        for _ in 0..rounds {
            mutate_stmts(&mut p, &mut rng);
        }
        let cs = p
            .changes_since(rev)
            .expect("stmts_mut keeps the log contiguous");
        assert!(!cs.structural());
        let closure = affected_closure(&view, Direction::Backward, cs.dirty_blocks());

        let after = DeadSolution::compute(&p, &view);
        for n in p.node_ids() {
            if before.at_entry(n) != after.at_entry(n) || before.at_exit(n) != after.at_exit(n) {
                assert!(
                    closure.get(n.index()),
                    "fixpoint moved in {} outside the dirty closure (case {case})",
                    p.block(n).name
                );
            }
        }
    }
}

/// The def-use chain graph's incremental patch is indistinguishable
/// from a cold rebuild: after every mutation of a random statement-list
/// mutation sequence, `DuGraph::patch` over the dirty block equals
/// `DuGraph::build` of the mutated program, structurally — kinds, defs,
/// uses, flow chains, and occurrence sets alike. The patched graph
/// feeds the next step, so splicing errors would compound and surface.
#[test]
fn patched_du_graph_matches_cold_rebuild_after_random_mutations() {
    use pdce::dfa::DuGraph;
    for (case, seed) in seeds(4).into_iter().enumerate() {
        let mut rng = Rng::new(seed ^ 0x00d1);
        let mut p = if case % 4 == 3 {
            tangled(&small_config(seed, true), 6)
        } else {
            structured(&small_config(seed, case % 2 == 0))
        };
        let mut prev = DuGraph::build(&p, &CfgView::new(&p));
        for step in 0..6 {
            let Some(dirty) = mutate_stmts(&mut p, &mut rng) else {
                break;
            };
            let view = CfgView::new(&p);
            let cold = DuGraph::build(&p, &view);
            let patched = DuGraph::patch(&p, &view, &prev, &[dirty]);
            assert_eq!(cold, patched, "case {case} step {step}");
            prev = patched;
        }
    }
}

/// Structural mutations are never misreported as statement-only edits:
/// a `block_mut` borrow (which can reach the terminator) must surface
/// as a structural delta or an unaccountable log (`None`) — both force
/// the cold-solve fallback.
#[test]
fn structural_mutations_force_cold_fallback() {
    for seed in seeds(3) {
        let mut p = structured(&small_config(seed, false));
        let rev = p.revision();
        let n = p.node_ids().next().unwrap();
        let _ = p.block_mut(n);
        if let Some(cs) = p.changes_since(rev) {
            assert!(
                cs.structural(),
                "block_mut must be conservative (seed {seed})"
            );
        }
    }
}
