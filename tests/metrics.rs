//! Integration tests for the metrics plane's determinism contract:
//! histograms built from per-thread shards merge to bit-identical
//! snapshots regardless of `--jobs` value, thread interleaving, or
//! merge order. These tests use *local* `Histogram`/`Registry`
//! instances, not the process-global registry, so they stay isolated
//! from concurrently running tests.

use pdce::metrics::{bucket_index, bucket_upper_edge, Histogram, HistogramSnapshot};

/// The deterministic per-item workload: a spread of sample values whose
/// distribution exercises many buckets (zero, small, mid, huge).
fn samples_for_item(i: u64) -> Vec<u64> {
    vec![
        0,
        i,
        i * 37 + 1,
        1 << (i % 40),
        (i * i).wrapping_mul(2_654_435_761) % 1_000_000_007,
    ]
}

/// One shared histogram observed from the `pdce-par` pool at every jobs
/// value: counts, sum, buckets, and quantiles must be bit-identical —
/// atomic bucket increments commute, so the schedule cannot matter.
#[test]
fn shared_histogram_is_jobs_invariant() {
    let items: Vec<u64> = (0..256).collect();
    let snapshot_at = |jobs: usize| {
        let hist = Histogram::new();
        pdce::par::map_indexed(jobs, &items, |_, &i| {
            for v in samples_for_item(i) {
                hist.observe(v);
            }
        });
        hist.snapshot()
    };
    let reference = snapshot_at(1);
    assert_eq!(reference.count, 256 * 5);
    for jobs in [2usize, 4, 8] {
        let got = snapshot_at(jobs);
        assert_eq!(got.count, reference.count, "jobs={jobs}");
        assert_eq!(got.sum, reference.sum, "jobs={jobs}");
        assert_eq!(got.buckets, reference.buckets, "jobs={jobs}");
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(got.quantile(q), reference.quantile(q), "jobs={jobs} q={q}");
        }
        assert_eq!(got.max_estimate(), reference.max_estimate(), "jobs={jobs}");
    }
}

/// Per-shard local histograms merged in shard order equal the same
/// shards merged in reverse order equal the shared-histogram result:
/// merge is commutative and associative, so any deterministic merge
/// order (the pool merges in shard-index order) yields the same bytes.
#[test]
fn shard_merge_order_is_irrelevant() {
    let items: Vec<u64> = (0..200).collect();
    // Shard by index residue — a stand-in for "whatever items each
    // worker happened to claim".
    let shards: Vec<HistogramSnapshot> = (0..4)
        .map(|shard| {
            let hist = Histogram::new();
            for &i in items.iter().filter(|&&i| i % 4 == shard) {
                for v in samples_for_item(i) {
                    hist.observe(v);
                }
            }
            hist.snapshot()
        })
        .collect();
    let merge_all = |order: &[usize]| {
        let mut acc = HistogramSnapshot::default();
        for &s in order {
            acc.merge(&shards[s]);
        }
        acc
    };
    let forward = merge_all(&[0, 1, 2, 3]);
    let reverse = merge_all(&[3, 2, 1, 0]);
    let shuffled = merge_all(&[2, 0, 3, 1]);
    assert_eq!(forward.count, reverse.count);
    assert_eq!(forward.sum, reverse.sum);
    assert_eq!(forward.buckets, reverse.buckets);
    assert_eq!(forward.buckets, shuffled.buckets);

    // And the merged shards equal observing everything into one
    // histogram directly.
    let direct = {
        let hist = Histogram::new();
        for &i in &items {
            for v in samples_for_item(i) {
                hist.observe(v);
            }
        }
        hist.snapshot()
    };
    assert_eq!(forward.count, direct.count);
    assert_eq!(forward.sum, direct.sum);
    assert_eq!(forward.buckets, direct.buckets);
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(forward.quantile(q), direct.quantile(q));
    }
}

/// Quantile estimates are pure functions of the bucket counts: the
/// reported value is always the inclusive upper edge of the bucket the
/// requested rank falls in, and ranks at bucket boundaries resolve to
/// the lower bucket (ceil semantics).
#[test]
fn quantiles_report_bucket_upper_edges() {
    let hist = Histogram::new();
    // 10 samples in bucket_index(100)=7 (64..=127), 90 in
    // bucket_index(5000)=13 (4096..=8191).
    for _ in 0..10 {
        hist.observe(100);
    }
    for _ in 0..90 {
        hist.observe(5000);
    }
    let snap = hist.snapshot();
    assert_eq!(snap.quantile(0.10), bucket_upper_edge(bucket_index(100)));
    assert_eq!(snap.quantile(0.11), bucket_upper_edge(bucket_index(5000)));
    assert_eq!(snap.quantile(0.99), bucket_upper_edge(bucket_index(5000)));
    assert_eq!(snap.max_estimate(), bucket_upper_edge(bucket_index(5000)));
}

/// A local registry's deterministic exposition is byte-identical when
/// the same logical work is recorded from different schedules.
#[test]
fn local_registry_exposition_is_schedule_invariant() {
    use pdce::metrics::{Registry, Stability};
    let items: Vec<u64> = (0..128).collect();
    let run = |jobs: usize| {
        let registry = Registry::new();
        let counter = registry.counter(
            "test_items_total",
            "items processed",
            Stability::Deterministic,
            &[],
        );
        let hist = registry.histogram(
            "test_values",
            "sample values",
            Stability::Deterministic,
            &[],
        );
        pdce::par::map_indexed(jobs, &items, |_, &i| {
            counter.inc();
            for v in samples_for_item(i) {
                hist.observe(v);
            }
        });
        registry.snapshot().prometheus_deterministic()
    };
    let reference = run(1);
    assert!(reference.contains("test_items_total 128"));
    for jobs in [2usize, 4, 8] {
        assert_eq!(run(jobs), reference, "jobs={jobs}");
    }
}
