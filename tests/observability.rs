//! Integration tests for the tracing/observability layer: stats
//! accounting parity between the driver and the pipeline, Chrome-trace
//! determinism, and the provenance log on the paper's Figure 3 example.

use std::rc::Rc;

use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::parser::parse;
use pdce::ir::Program;
use pdce::pass::Pipeline;
use pdce::progen::{structured, GenConfig};
use pdce::trace::{self, chrome, explain, json, Phase, ProvAction};

fn structured_prog(seed: u64) -> Program {
    structured(&GenConfig {
        seed,
        target_blocks: 48,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.2,
        loop_prob: 0.3,
        max_depth: 12,
        expr_depth: 2,
        nondet: true,
    })
}

/// Figure 3 of the paper: the loop-invariant fragment `y := a + b;
/// c := y - d` leaves the loop via second-order sinking + elimination.
const FIG3: &str = "prog {
    block s { goto h }
    block h { y := a + b; c := y - d; nondet hb after }
    block hb { x := x + 1; goto h }
    block after { nondet n7 n8 }
    block n7 { out(c); goto e }
    block n8 { out(x); goto e }
    block e { halt }
}";

/// The satellite acceptance check: rounds, cache hit/miss deltas, and
/// the solver counters agree between a direct `optimize()` call and the
/// same run driven through `Pipeline` — the pipeline adds composition,
/// not different accounting.
#[test]
fn stats_agree_between_driver_and_pipeline() {
    let prog = structured_prog(7);

    let mut direct = prog.clone();
    let solver_before = trace::solver_totals();
    let stats = optimize(&mut direct, &PdceConfig::pde()).unwrap();
    let direct_solver = trace::solver_totals().since(&solver_before);

    // The driver's own accounting matches the thread-local accumulator.
    assert_eq!(stats.solver, direct_solver);
    assert!(stats.solver.problems > 0, "pde solves dataflow problems");
    assert!(stats.solver.evaluations > 0);
    assert!(stats.solver.word_ops > 0);

    // Same run through the pipeline, with a collector counting rounds.
    let mut piped = prog.clone();
    let collector = Rc::new(trace::Collector::new());
    let solver_before = trace::solver_totals();
    let report = {
        let _guard = trace::install(collector.clone());
        Pipeline::parse("pde").unwrap().run(&mut piped)
    };
    let piped_solver = trace::solver_totals().since(&solver_before);

    assert_eq!(
        pdce::ir::printer::canonical_string(&direct),
        pdce::ir::printer::canonical_string(&piped),
        "both paths optimize identically"
    );
    assert_eq!(stats.solver, piped_solver, "solver counters agree");
    assert_eq!(stats.cache, report.cache, "cache deltas agree");

    let round_spans = collector
        .events()
        .iter()
        .filter(|e| e.phase == Phase::Begin && e.cat == "round")
        .count();
    assert_eq!(
        round_spans as u64, stats.rounds,
        "one round span per driver round"
    );
}

/// Solver counters are deterministic for a fixed input program.
#[test]
fn solver_counters_are_deterministic() {
    let run = || {
        let mut p = structured_prog(23);
        let before = trace::solver_totals();
        optimize(&mut p, &PdceConfig::pfe()).unwrap();
        trace::solver_totals().since(&before)
    };
    assert_eq!(run(), run());
}

fn chrome_trace_of_run(seed: u64) -> (String, usize) {
    let mut prog = structured_prog(seed);
    let collector = Rc::new(trace::Collector::new());
    {
        let _guard = trace::install(collector.clone());
        Pipeline::parse("repeat(dce,sink)").unwrap().run(&mut prog);
    }
    let events = collector.events();
    let text = chrome::chrome_trace(&events, &chrome::ChromeOptions::logical());
    (text, events.len())
}

/// The satellite acceptance check: Chrome-trace output is valid JSON,
/// schema-stable, and byte-identical across two runs for a fixed
/// `pdce-rng` seed (the logical clock removes the only wall-time
/// dependence).
#[test]
fn chrome_trace_is_valid_schema_stable_and_deterministic() {
    let (a, events) = chrome_trace_of_run(13);
    let (b, _) = chrome_trace_of_run(13);
    assert_eq!(a, b, "logical-clock traces must be byte-identical");
    assert!(events > 0, "the run produced trace events");

    let doc = json::parse(&a).expect("valid JSON");
    let arr = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    assert_eq!(arr.len(), events);
    for event in arr {
        // Schema stability: every event carries the Chrome-required
        // keys; non-end events also carry cat/name/args.
        for key in ["ph", "pid", "tid", "ts"] {
            assert!(event.get(key).is_some(), "missing `{key}` in {event:?}");
        }
        let ph = event.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "B" | "E" | "i" | "C"), "unexpected ph {ph}");
        if ph != "E" {
            for key in ["cat", "name", "args"] {
                assert!(event.get(key).is_some(), "missing `{key}` in {event:?}");
            }
        }
    }
    // Distinct seeds produce distinct traces (the determinism above is
    // not vacuous).
    let (c, _) = chrome_trace_of_run(14);
    assert_ne!(a, c);
}

/// Parity between the trace plane and the metrics plane: the cache
/// telemetry attached to the driver span's end event (`cfg_cache_hits`,
/// `cfg_relayouts`) must agree with the run's `PdceStats.cache` — and
/// the process-global metrics registry, fed by the same increment
/// sites, must have accumulated at least this run's counts (tests share
/// the registry, so concurrent runs may add more).
#[test]
fn chrome_span_args_agree_with_cache_metrics() {
    let mut prog = structured_prog(23);
    let collector = Rc::new(trace::Collector::new());
    let registry_before = pdce::metrics::global().snapshot();
    let stats = {
        let _guard = trace::install(collector.clone());
        optimize(&mut prog, &PdceConfig::pde()).unwrap()
    };
    let registry_delta = pdce::metrics::global().snapshot().since(&registry_before);
    let text = chrome::chrome_trace(&collector.events(), &chrome::ChromeOptions::logical());
    let doc = json::parse(&text).expect("valid JSON");
    let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
    // The driver span's end event is the one finished with cache args.
    let args = arr
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E"))
        .filter_map(|e| e.get("args"))
        .find(|a| a.get("cfg_cache_hits").is_some())
        .expect("driver end event carries cache telemetry args");
    assert_eq!(
        args.get("cfg_cache_hits").unwrap().as_num(),
        Some(stats.cache.cfg_hits as f64),
        "span arg cfg_cache_hits disagrees with PdceStats"
    );
    assert_eq!(
        args.get("cfg_relayouts").unwrap().as_num(),
        Some(stats.cache.cfg_relayouts as f64),
        "span arg cfg_relayouts disagrees with PdceStats"
    );
    let hits = registry_delta
        .counter("pdce_cache_events_total", &[("kind", "cfg_hit")])
        .unwrap_or(0);
    let relayouts = registry_delta
        .counter("pdce_cache_events_total", &[("kind", "cfg_relayout")])
        .unwrap_or(0);
    assert!(
        hits >= stats.cache.cfg_hits,
        "registry cfg_hit delta {hits} below the span's {}",
        stats.cache.cfg_hits
    );
    assert!(
        relayouts >= stats.cache.cfg_relayouts,
        "registry cfg_relayout delta {relayouts} below the span's {}",
        stats.cache.cfg_relayouts
    );
}

/// The tentpole acceptance check on Figure 3: `--explain`'s provenance
/// log names the pass and round responsible for each eliminated/moved
/// assignment.
#[test]
fn provenance_explains_figure3() {
    let mut prog = parse(FIG3).unwrap();
    let collector = Rc::new(trace::Collector::new());
    {
        let _guard = trace::install(collector.clone());
        optimize(&mut prog, &PdceConfig::pde()).unwrap();
    }
    let log = collector.provenance();
    assert!(!log.is_empty(), "figure 3 records transformations");
    for rec in &log {
        assert!(!rec.pass.is_empty(), "every record names a pass");
        assert!(rec.round >= 1, "every record carries its driver round");
        assert!(!rec.block.is_empty() && !rec.stmt.is_empty());
    }
    // The loop-invariant fragment leaves the loop: both statements are
    // sunk by `sink`, and the dead repeat-block copies fall to `dce`.
    let find = |action: ProvAction, stmt: &str| {
        log.iter()
            .find(|r| r.action == action && r.stmt == stmt)
            .unwrap_or_else(|| panic!("no {} record for `{stmt}`", action.label()))
    };
    let sunk = find(ProvAction::Sunk, "y := a + b");
    assert_eq!(sunk.pass, "sink");
    assert_eq!(sunk.block, "h", "the fragment starts in the loop header");
    let eliminated = find(ProvAction::Eliminated, "y := a + b");
    assert_eq!(eliminated.pass, "dce");
    assert!(
        eliminated.round > sunk.round,
        "the copy dies in a later round than the sink that created it"
    );
    find(ProvAction::Sunk, "c := y - d");
    find(ProvAction::Eliminated, "c := y - d");

    // The human rendering names all of it.
    let text = explain::render(&log);
    assert!(text.contains("round 1:"));
    assert!(text.contains("sank"));
    assert!(text.contains("eliminated"));
    assert!(text.contains("`y := a + b`"));
    assert!(text.contains("[sink]"));
    assert!(text.contains("[dce ]"));
}

/// Tracing is opt-in: with no collector installed nothing is recorded,
/// and a scoped install stops collecting when the guard drops.
#[test]
fn tracing_is_scoped_and_off_by_default() {
    let mut prog = parse(FIG3).unwrap();
    assert!(!trace::enabled());
    let collector = Rc::new(trace::Collector::new());
    {
        let _guard = trace::install(collector.clone());
        assert!(trace::enabled());
    }
    assert!(!trace::enabled());
    optimize(&mut prog, &PdceConfig::pde()).unwrap();
    assert!(collector.is_empty(), "nothing recorded after the guard");
    assert!(collector.provenance().is_empty());
}

/// The pipeline's per-pass metrics table: right-aligned numerics and a
/// wall-time percentage column that sums to ~100%.
#[test]
fn pipeline_render_includes_time_percentages() {
    let mut prog = parse(FIG3).unwrap();
    let report = Pipeline::parse("repeat(dce,sink)").unwrap().run(&mut prog);
    let table = report.render();
    let mut lines = table.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("time%"));
    let mut total_pct = 0.0;
    for line in lines {
        assert!(line.ends_with('%'), "percentage column last: {line}");
        let pct: f64 = line
            .rsplit(' ')
            .next()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .expect("parsable percentage");
        total_pct += pct;
    }
    assert!(
        (total_pct - 100.0).abs() < 1.0,
        "per-pass shares sum to ~100%, got {total_pct}"
    );
}
