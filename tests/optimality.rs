//! Brute-force validation of Theorem 5.2 (optimality).
//!
//! The universe explorer of `pdce-core` enumerates programs reachable by
//! elementary admissible sinkings and eliminations; the driver's output
//! must dominate (Definition 3.6) every one of them. Exhaustive path
//! comparison on acyclic programs makes the check exact.

use pdce::core::better::BetterOptions;
use pdce::core::driver::{optimize, PdceConfig};
use pdce::core::elim::Mode;
use pdce::core::universe::{assert_optimal_on_universe, explore, UniverseOptions};
use pdce::ir::edgesplit::split_critical_edges;
use pdce::ir::parser::parse;
use pdce::progen::{structured, GenConfig};

fn check(src: &str, mode: Mode) {
    let mut start = parse(src).unwrap();
    check_program(start.num_blocks(), &mut start, mode);
}

fn check_program(_hint: usize, start: &mut pdce::ir::Program, mode: Mode) {
    split_critical_edges(start);
    let mut optimized = start.clone();
    let config = match mode {
        Mode::Dead => PdceConfig::pde(),
        Mode::Faint => PdceConfig::pfe(),
    };
    optimize(&mut optimized, &config).unwrap();
    let opts = UniverseOptions {
        mode,
        max_programs: 1500,
        better: BetterOptions {
            samples: 48,
            max_len: 128,
            ..BetterOptions::default()
        },
    };
    match assert_optimal_on_universe(start, &optimized, &opts) {
        Ok(info) => assert!(info.programs_checked >= 1),
        Err(v) => panic!(
            "optimality violated; competitor:\n{}\nviolations: {:#?}",
            v.competitor, v.report.violations
        ),
    }
}

#[test]
fn figures_are_optimal_in_bounded_universe() {
    // Figure 1.
    check(
        "prog {
           block s  { goto n1 }
           block n1 { y := a + b; nondet n2 n3 }
           block n2 { y := 4; goto n4 }
           block n3 { out(y); goto n4 }
           block n4 { out(y); goto e }
           block e  { halt }
         }",
        Mode::Dead,
    );
    // Figure 7 (m-to-n).
    check(
        "prog {
           block s  { nondet n1 n2 }
           block n1 { a := a + 1; goto n3 }
           block n2 { y := c + d; a := a + 1; goto n3 }
           block n3 { nondet n4 n5 }
           block n4 { out(a); goto e }
           block n5 { out(b); goto e }
           block e  { halt }
         }",
        Mode::Dead,
    );
    // Figure 10 (sinking–sinking).
    check(
        "prog {
           block s  { goto n1 }
           block n1 { y := a + b; goto n2 }
           block n2 { a := c; nondet n3 n4 }
           block n3 { y := d; goto n5 }
           block n4 { goto n5 }
           block n5 { x := a + c; goto n6 }
           block n6 { out(x + y); goto e }
           block e  { halt }
         }",
        Mode::Dead,
    );
    // Figure 11 (elimination–sinking).
    check(
        "prog {
           block s  { goto n1 }
           block n1 { y := a + b; z := y + 1; z := 2; nondet n4 n5 }
           block n4 { y := 0; out(z); goto e }
           block n5 { out(y); goto e }
           block e  { halt }
         }",
        Mode::Dead,
    );
    // Figure 12 (elimination–elimination), in both modes.
    let fig12 = "prog {
        block s  { a := c + 1; nondet n3 n4 }
        block n3 { goto n5 }
        block n4 { y := a + b; goto n5 }
        block n5 { y := c + d; out(y); goto e }
        block e  { halt }
    }";
    check(fig12, Mode::Dead);
    check(fig12, Mode::Faint);
}

#[test]
fn fig8_optimal_after_splitting() {
    check(
        "prog {
           block s  { goto n1 }
           block n1 { x := a + b; nondet n2 n3 }
           block n3 { x := 5; goto n2 }
           block n2 { out(x); goto e }
           block e  { halt }
         }",
        Mode::Dead,
    );
}

/// Random tiny acyclic programs: the strongest form of the check, since
/// the path comparison is exhaustive.
#[test]
fn random_acyclic_programs_are_optimal() {
    for seed in 0..24u64 {
        let mut p = structured(&GenConfig {
            seed,
            target_blocks: 8,
            num_vars: 3,
            stmts_per_block: (1, 2),
            out_prob: 0.3,
            loop_prob: 0.0,
            max_depth: 2,
            expr_depth: 1,
            nondet: true,
        });
        check_program(seed as usize, &mut p, Mode::Dead);
    }
}

#[test]
fn random_acyclic_programs_are_optimal_under_pfe() {
    for seed in 0..12u64 {
        let mut p = structured(&GenConfig {
            seed: seed.wrapping_mul(977),
            target_blocks: 7,
            num_vars: 3,
            stmts_per_block: (1, 2),
            out_prob: 0.3,
            loop_prob: 0.0,
            max_depth: 2,
            expr_depth: 1,
            nondet: true,
        });
        check_program(seed as usize, &mut p, Mode::Faint);
    }
}

/// Cyclic programs: sampled-path check (sound but approximate).
#[test]
fn loop_programs_are_optimal_on_sampled_paths() {
    check(
        "prog {
           block s { goto h }
           block h { x := a + b; nondet h after }
           block after { out(x); goto e }
           block e { halt }
         }",
        Mode::Dead,
    );
}

/// The Feigen et al. restriction (Related Work): without the join move,
/// the explorer cannot reach the merged Figure 7 program — evidence that
/// m-to-n treatment is essential. (We verify the join move *is* needed
/// by checking the merged program appears in the full universe.)
#[test]
fn universe_contains_m_to_n_results() {
    let p = parse(
        "prog {
           block s  { nondet n1 n2 }
           block n1 { a := a + 1; goto n3 }
           block n2 { a := a + 1; goto n3 }
           block n3 { out(a); goto e }
           block e  { halt }
         }",
    )
    .unwrap();
    let res = explore(&p, &UniverseOptions::default());
    let merged = parse(
        "prog {
           block s  { nondet n1 n2 }
           block n1 { goto n3 }
           block n2 { goto n3 }
           block n3 { a := a + 1; out(a); goto e }
           block e  { halt }
         }",
    )
    .unwrap();
    let key = pdce::ir::printer::canonical_string(&merged);
    assert!(res
        .programs
        .iter()
        .any(|q| pdce::ir::printer::canonical_string(q) == key));
}
