//! Integration tests for the unified pass manager: the driver's
//! Section 7 heuristics (region restriction, graceful truncation), the
//! shared analysis cache, and randomly composed pipelines of every
//! registered pass.

use pdce::core::driver::{optimize, LimitBehavior, PdceConfig, PdceError};
use pdce::core::sink::{sink_assignments_cached, sinking_is_stable_cached};
use pdce::dfa::AnalysisCache;
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce::ir::parser::parse;
use pdce::ir::printer::print_stmt;
use pdce::ir::Program;
use pdce::pass::{registered_passes, Pipeline};
use pdce::progen::{second_order_tower, structured, GenConfig};
use pdce_rng::Rng;

/// Two independent Figure-1 gadgets feeding one exit: `a1..a3` sinks
/// and eliminates `x`, `b1..b3` would do the same for `z`.
fn two_gadgets() -> Program {
    parse(
        "prog {
           block s  { goto a1 }
           block a1 { x := u + v; nondet a2 a3 }
           block a2 { out(x); goto b1 }
           block a3 { x := 1; goto b1 }
           block b1 { z := u * v; nondet b2 b3 }
           block b2 { out(z); goto e }
           block b3 { z := 2; goto e }
           block e  { out(x); out(z); halt }
         }",
    )
    .unwrap()
}

fn outputs_of(prog: &Program, decisions: Option<Vec<usize>>) -> (Vec<i64>, Vec<usize>) {
    let inputs: [(&str, i64); 2] = [("u", 3), ("v", -4)];
    let mut env = Env::with_values(prog, &inputs);
    let trace = match decisions {
        Some(d) => {
            let mut oracle = ReplayOracle::new(d);
            run(prog, &mut env, &mut oracle, ExecLimits::default())
        }
        None => {
            let mut oracle = SeededOracle::new(13);
            run(prog, &mut env, &mut oracle, ExecLimits::default())
        }
    };
    (trace.outputs, trace.decisions)
}

#[test]
fn region_restriction_leaves_outside_blocks_verbatim() {
    let original = two_gadgets();
    let mut restricted = original.clone();
    let stats = optimize(
        &mut restricted,
        &PdceConfig::pde().with_region(["a1", "a2", "a3"]),
    )
    .unwrap();
    assert!(
        stats.eliminated_assignments + stats.sunk_assignments > 0,
        "the a-gadget is optimizable"
    );

    // The b-gadget is outside the region: statement-for-statement intact.
    for name in ["b1", "b2", "b3", "e"] {
        let before = original.block_by_name(name).unwrap();
        let after = restricted.block_by_name(name).unwrap();
        let render = |p: &Program, n| {
            p.block(n)
                .stmts
                .iter()
                .map(|s| print_stmt(p, s))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            render(&original, before),
            render(&restricted, after),
            "block {name} must be untouched outside the region"
        );
    }

    let (reference, decisions) = outputs_of(&original, None);
    let (got, _) = outputs_of(&restricted, Some(decisions));
    assert_eq!(reference, got, "region restriction broke semantics");
}

#[test]
fn truncate_stops_gracefully_with_a_correct_partial_result() {
    // The tower needs one round per link, far more than the cap of 1.
    let original = second_order_tower(12);
    let mut truncated = original.clone();
    let stats = optimize(&mut truncated, &PdceConfig::pde().truncating_after(1)).unwrap();
    assert!(stats.truncated, "cap of 1 must truncate on the tower");
    assert_eq!(stats.rounds, 1);

    let full_rounds = {
        let mut full = original.clone();
        optimize(&mut full, &PdceConfig::pde()).unwrap().rounds
    };
    assert!(full_rounds > 1, "workload must actually need iteration");

    // The partial result is still semantics-preserving.
    let (reference, decisions) = outputs_of(&original, None);
    let (got, _) = outputs_of(&truncated, Some(decisions));
    assert_eq!(reference, got, "truncated result broke semantics");
}

#[test]
fn error_limit_behavior_reports_the_round_cap() {
    let mut prog = second_order_tower(12);
    let config = PdceConfig {
        max_rounds: Some(1),
        on_limit: LimitBehavior::Error,
        ..PdceConfig::pde()
    };
    match optimize(&mut prog, &config) {
        // The driver reports the round that exceeded the cap: cap + 1.
        Err(PdceError::RoundLimitExceeded { rounds }) => assert_eq!(rounds, 2),
        other => panic!("expected RoundLimitExceeded, got {other:?}"),
    }
}

/// Regression for the historic double CFG build in the sinker: running
/// the sinking transformation and then the stability check against one
/// cache must build the CFG view exactly once.
#[test]
fn sink_and_stability_check_share_one_cfg_build() {
    let mut prog = two_gadgets();
    let mut cache = AnalysisCache::new();
    sink_assignments_cached(&mut prog, &mut cache, None).unwrap();
    assert!(sinking_is_stable_cached(&prog, &mut cache));
    let stats = cache.stats();
    assert_eq!(
        stats.cfg_misses, 1,
        "sinking must reuse one CfgView end to end: {stats:?}"
    );
    assert!(stats.cfg_hits >= 1, "stability check must hit the cache");
}

/// Any pipeline composed from registered passes is semantics-preserving:
/// random specs (including `repeat(...)` groups) over random programs,
/// checked by comparing interpreter output traces against the original.
#[test]
fn random_pipelines_preserve_semantics() {
    let mut rng = Rng::new(0x9a55_0001);
    let pool = registered_passes();
    // Passes that strictly shrink (or in-place rewrite) the program, so
    // any repeat(...) of them converges quickly. Opposing motion passes
    // (e.g. repeat(hoist,lcm)) may legally ping-pong until the defensive
    // round cap — correct, but far too slow for a 24-case sweep.
    let contractive = [
        "dce",
        "fce",
        "sink",
        "liveness-dce",
        "duchain-dce",
        "copyprop",
        "lvn",
        "ssa-dce",
        "simplify",
    ];
    for case in 0..24u64 {
        let prog = structured(&GenConfig {
            seed: 0x5eed ^ case.wrapping_mul(2654435761),
            target_blocks: 16,
            num_vars: 6,
            out_prob: 0.25,
            nondet: true,
            ..GenConfig::default()
        });

        let mut parts = Vec::new();
        for _ in 0..rng.gen_range(1, 6) {
            if rng.gen_bool(0.25) {
                let first = *rng.choose(&contractive);
                let second = *rng.choose(&contractive);
                parts.push(format!("repeat({first},{second})"));
            } else {
                parts.push(rng.choose(pool).to_string());
            }
        }
        let spec = parts.join(",");
        let pipeline = Pipeline::parse(&spec).expect("generated specs are well-formed");

        let mut optimized = prog.clone();
        let report = pipeline.run(&mut optimized);

        let (reference, decisions) = outputs_of(&prog, None);
        let (got, _) = outputs_of(&optimized, Some(decisions));
        assert_eq!(
            reference, got,
            "pipeline `{spec}` broke semantics (case {case}, report {report:?})"
        );
    }
}
