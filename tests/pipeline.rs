//! Whole-pipeline integration: parse → optimize → print → reparse, the
//! combined optimizer stack, and the DOT exporter.

use pdce::baselines::copy_propagate;
use pdce::core::driver::{optimize, pde, PdceConfig};
use pdce::ir::edgesplit::split_critical_edges;
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce::ir::parser::parse;
use pdce::ir::printer::{canonical_string, print_program};
use pdce::lcm::lazy_code_motion;
use pdce::progen::{structured, GenConfig};

#[test]
fn optimized_programs_survive_print_parse_cycles() {
    for seed in 0..20u64 {
        let mut p = structured(&GenConfig {
            seed,
            nondet: true,
            ..GenConfig::default()
        });
        pde(&mut p).unwrap();
        let printed = print_program(&p);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(canonical_string(&p), canonical_string(&reparsed));
        // Optimizing the reparsed program is a no-op (fixpoint survives
        // serialization).
        let mut again = reparsed.clone();
        let stats = pde(&mut again).unwrap();
        assert_eq!(stats.rounds, 1, "seed {seed}");
        assert_eq!(canonical_string(&again), canonical_string(&reparsed));
    }
}

/// The full optimizer stack a compiler would run: copy propagation, then
/// LCM (redundancy), then pfe (partially dead/faint code). Semantics are
/// preserved end to end and dynamic assignment work never increases
/// relative to pfe alone... (LCM introduces temp initializations, so we
/// only require output equality plus the pfe dominance over the input.)
#[test]
fn combined_stack_preserves_semantics() {
    for seed in 0..20u64 {
        let original = structured(&GenConfig {
            seed: seed.wrapping_mul(7919),
            target_blocks: 22,
            ..GenConfig::default()
        });
        let mut opt = original.clone();
        split_critical_edges(&mut opt);
        copy_propagate(&mut opt);
        lazy_code_motion(&mut opt).unwrap();
        optimize(&mut opt, &PdceConfig::pfe()).unwrap();

        let inputs: [(&str, i64); 3] = [("v0", 11), ("v1", -4), ("v2", 0)];
        let mut env = Env::with_values(&original, &inputs);
        let mut oracle = SeededOracle::new(5);
        let t0 = run(&original, &mut env, &mut oracle, ExecLimits::default());
        let mut env = Env::with_values(&opt, &inputs);
        let mut oracle = ReplayOracle::new(t0.decisions.clone());
        let t1 = run(&opt, &mut env, &mut oracle, ExecLimits::default());
        assert_eq!(t0.outputs, t1.outputs, "seed {seed}");
    }
}

#[test]
fn dot_export_of_optimized_program() {
    let mut p = parse(
        "prog {
           block s  { goto n1 }
           block n1 { x := a + b; nondet n2 n3 }
           block n3 { x := 5; goto n2 }
           block n2 { out(x); goto e }
           block e  { halt }
         }",
    )
    .unwrap();
    pde(&mut p).unwrap();
    let dot = pdce::ir::dot::to_dot(&p, "fig8");
    assert!(dot.contains("digraph fig8"));
    assert!(dot.contains("style=dashed"), "synthetic node rendered");
    assert!(dot.contains("x := a + b"));
}

/// Paper Section 6.2: code growth ω stays modest on realistic programs.
#[test]
fn growth_factor_is_small_on_random_programs() {
    let mut worst: f64 = 1.0;
    for seed in 0..40u64 {
        let mut p = structured(&GenConfig {
            seed,
            nondet: true,
            target_blocks: 30,
            ..GenConfig::default()
        });
        let stats = pde(&mut p).unwrap();
        worst = worst.max(stats.growth_factor());
    }
    assert!(
        worst < 2.5,
        "code growth should be O(1) in practice, saw ω = {worst}"
    );
}

/// Paper Section 6.3: the round count r stays far below the i·b bound.
#[test]
fn round_counts_stay_small_on_random_programs() {
    for seed in 0..40u64 {
        let mut p = structured(&GenConfig {
            seed,
            nondet: true,
            target_blocks: 30,
            ..GenConfig::default()
        });
        let i = p.num_stmts().max(1) as u64;
        let stats = pde(&mut p).unwrap();
        assert!(
            stats.rounds <= i + 4,
            "seed {seed}: r = {} for i = {i}",
            stats.rounds
        );
    }
}
