//! Property-based tests over randomly generated programs, driven by the
//! workspace's deterministic seeded generator (`pdce-rng`).
//!
//! These check the paper's semantic guarantees on the whole generator
//! distribution:
//!
//! * **Semantics preservation** (Definitions 3.2/3.4): output traces are
//!   unchanged by pde/pfe/dce/fce, copy propagation, and LCM.
//! * **No impairment** (Section 1, Figure 5/6 discussion): the number of
//!   executed assignments never increases under pde/pfe.
//! * **Per-path dominance** (Definition 3.6): occurrence counts never
//!   increase on any corresponding path.
//! * **Idempotence**: the drivers are fixpoints of themselves.
//! * **dead ⟹ faint** (Section 3).

use pdce::baselines::copy_propagate;
use pdce::core::better::{check_improvement, BetterOptions};
use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce::ir::printer::canonical_string;
use pdce::ir::Program;
use pdce::lcm::lazy_code_motion;
use pdce::progen::{structured, tangled, GenConfig};
use pdce_rng::Rng;

const CASES: usize = 48;

/// Distinct program seeds per property, derived deterministically.
fn seeds(salt: u64) -> Vec<u64> {
    let mut rng = Rng::new(0x9a9e_5000 ^ salt);
    (0..CASES).map(|_| rng.next_u64()).collect()
}

fn small_config(seed: u64, nondet: bool) -> GenConfig {
    GenConfig {
        seed,
        target_blocks: 18,
        num_vars: 5,
        stmts_per_block: (1, 3),
        out_prob: 0.25,
        loop_prob: 0.3,
        max_depth: 3,
        expr_depth: 2,
        nondet,
    }
}

/// Runs `prog` with a recorded/replayed decision stream and fixed inputs.
fn trace_of(
    prog: &Program,
    inputs: &[(&str, i64)],
    decisions: Vec<usize>,
) -> pdce::ir::interp::Trace {
    let mut env = Env::with_values(prog, inputs);
    let mut oracle = ReplayOracle::new(decisions);
    run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 20_000,
        },
    )
}

fn record_run(prog: &Program, inputs: &[(&str, i64)], seed: u64) -> pdce::ir::interp::Trace {
    let mut env = Env::with_values(prog, inputs);
    let mut oracle = SeededOracle::new(seed);
    run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 20_000,
        },
    )
}

fn check_preserves_and_no_impairment(src_prog: &Program, config: &PdceConfig) {
    let mut optimized = src_prog.clone();
    optimize(&mut optimized, config).unwrap();
    let inputs: [(&str, i64); 3] = [("v0", 3), ("v1", -2), ("v2", 7)];
    for run_seed in [1u64, 42, 993] {
        let orig = record_run(src_prog, &inputs, run_seed);
        let opt = trace_of(&optimized, &inputs, orig.decisions.clone());
        assert_eq!(&orig.outputs, &opt.outputs, "outputs diverged");
        assert!(
            opt.executed_assignments <= orig.executed_assignments,
            "impairment: {} > {} assignments executed",
            opt.executed_assignments,
            orig.executed_assignments
        );
    }
}

#[test]
fn pde_preserves_semantics_and_never_impairs() {
    for seed in seeds(1) {
        let p = structured(&small_config(seed, false));
        check_preserves_and_no_impairment(&p, &PdceConfig::pde());
    }
}

#[test]
fn pfe_preserves_semantics_and_never_impairs() {
    for seed in seeds(2) {
        let p = structured(&small_config(seed, false));
        check_preserves_and_no_impairment(&p, &PdceConfig::pfe());
    }
}

#[test]
fn pde_on_nondet_programs() {
    for seed in seeds(3) {
        let p = structured(&small_config(seed, true));
        check_preserves_and_no_impairment(&p, &PdceConfig::pde());
    }
}

#[test]
fn pde_on_tangled_irreducible_programs() {
    for seed in seeds(4) {
        let p = tangled(&small_config(seed, true), 6);
        check_preserves_and_no_impairment(&p, &PdceConfig::pde());
        check_preserves_and_no_impairment(&p, &PdceConfig::pfe());
    }
}

#[test]
fn per_path_dominance_holds() {
    for seed in seeds(5) {
        let p = structured(&small_config(seed, true));
        for config in [PdceConfig::pde(), PdceConfig::pfe()] {
            let mut optimized = p.clone();
            optimize(&mut optimized, &config).unwrap();
            let report = check_improvement(
                &p,
                &optimized,
                &BetterOptions {
                    samples: 64,
                    ..BetterOptions::default()
                },
            );
            assert!(report.holds(), "violations: {:#?}", report.violations);
        }
    }
}

#[test]
fn drivers_are_idempotent() {
    for seed in seeds(6) {
        let p = structured(&small_config(seed, true));
        for config in [PdceConfig::pde(), PdceConfig::pfe()] {
            let mut once = p.clone();
            optimize(&mut once, &config).unwrap();
            let first = canonical_string(&once);
            let stats = optimize(&mut once, &config).unwrap();
            assert_eq!(canonical_string(&once), first);
            assert_eq!(stats.eliminated_assignments, 0);
            assert_eq!(stats.rounds, 1);
        }
    }
}

#[test]
fn pfe_subsumes_pde() {
    for seed in seeds(7) {
        let p = structured(&small_config(seed, true));
        let mut with_pde = p.clone();
        optimize(&mut with_pde, &PdceConfig::pde()).unwrap();
        let mut with_pfe = p.clone();
        optimize(&mut with_pfe, &PdceConfig::pfe()).unwrap();
        assert!(with_pfe.num_assignments() <= with_pde.num_assignments());
        // And pfe's output dominates pde's per path.
        let report = check_improvement(
            &with_pde,
            &with_pfe,
            &BetterOptions {
                samples: 64,
                ..BetterOptions::default()
            },
        );
        assert!(report.holds(), "violations: {:#?}", report.violations);
    }
}

#[test]
fn dead_implies_faint() {
    use pdce::core::{DeadSolution, FaintSolution};
    use pdce::ir::CfgView;
    for seed in seeds(8) {
        let p = structured(&small_config(seed, true));
        let view = CfgView::new(&p);
        let dead = DeadSolution::compute(&p, &view);
        let faint = FaintSolution::compute(&p, &view);
        for n in p.node_ids() {
            let after = dead.after_each_stmt(&p, n);
            for (k, after_k) in after.iter().enumerate() {
                for v in 0..p.num_vars() {
                    if after_k.get(v) {
                        assert!(
                            faint.faint_after(n, k, pdce::ir::Var::from_index(v)),
                            "dead but not faint at {}[{}] var v{}",
                            p.block(n).name,
                            k,
                            v
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn copy_propagation_preserves_semantics() {
    for seed in seeds(9) {
        let p = structured(&small_config(seed, false));
        let mut q = p.clone();
        copy_propagate(&mut q);
        let inputs: [(&str, i64); 2] = [("v0", 5), ("v3", -1)];
        let t0 = record_run(&p, &inputs, 7);
        let t1 = trace_of(&q, &inputs, t0.decisions.clone());
        assert_eq!(t0.outputs, t1.outputs);
    }
}

#[test]
fn lcm_preserves_semantics() {
    for seed in seeds(10) {
        let mut p = structured(&small_config(seed, false));
        pdce::ir::edgesplit::split_critical_edges(&mut p);
        let mut q = p.clone();
        lazy_code_motion(&mut q).unwrap();
        let inputs: [(&str, i64); 2] = [("v1", 9), ("v2", 2)];
        let t0 = record_run(&p, &inputs, 3);
        let t1 = trace_of(&q, &inputs, t0.decisions.clone());
        assert_eq!(t0.outputs, t1.outputs);
    }
}

#[test]
fn hoisting_preserves_semantics() {
    use pdce::baselines::hoist_assignments;
    for seed in seeds(11) {
        let mut p = structured(&small_config(seed, false));
        pdce::ir::edgesplit::split_critical_edges(&mut p);
        let mut q = p.clone();
        // Iterate to the hoisting fixpoint, bounded.
        for _ in 0..10 {
            let before = canonical_string(&q);
            hoist_assignments(&mut q).unwrap();
            if canonical_string(&q) == before {
                break;
            }
        }
        let inputs: [(&str, i64); 2] = [("v0", 4), ("v2", -6)];
        let t0 = record_run(&p, &inputs, 13);
        let t1 = trace_of(&q, &inputs, t0.decisions.clone());
        assert_eq!(&t0.outputs, &t1.outputs);
        // Hoisting never *increases* executed assignments on a path: a
        // merge keeps exactly one occurrence per path, and hoisting a
        // loop-invariant occurrence above its loop can only reduce the
        // count.
        assert!(t1.executed_assignments <= t0.executed_assignments);
    }
}

#[test]
fn hoisting_on_nondet_programs_preserves_semantics() {
    use pdce::baselines::hoist_assignments;
    for seed in seeds(12) {
        let mut p = structured(&small_config(seed, true));
        pdce::ir::edgesplit::split_critical_edges(&mut p);
        let mut q = p.clone();
        hoist_assignments(&mut q).unwrap();
        let inputs: [(&str, i64); 2] = [("v1", 8), ("v3", 1)];
        let t0 = record_run(&p, &inputs, 29);
        let t1 = trace_of(&q, &inputs, t0.decisions.clone());
        assert_eq!(&t0.outputs, &t1.outputs);
    }
}

#[test]
fn printer_parser_roundtrip() {
    for seed in seeds(13) {
        let p = structured(&small_config(seed, true));
        let printed = pdce::ir::printer::print_program(&p);
        let reparsed = pdce::ir::parser::parse(&printed).unwrap();
        assert_eq!(canonical_string(&p), canonical_string(&reparsed));
    }
}

#[test]
fn lvn_preserves_semantics() {
    use pdce::baselines::local_value_numbering;
    for seed in seeds(14) {
        let p = structured(&small_config(seed, true));
        let mut q = p.clone();
        local_value_numbering(&mut q);
        let inputs: [(&str, i64); 3] = [("v0", 3), ("v1", -8), ("v2", 2)];
        for run_seed in [9u64, 44] {
            let t0 = record_run(&p, &inputs, run_seed);
            let t1 = trace_of(&q, &inputs, t0.decisions.clone());
            assert_eq!(&t0.outputs, &t1.outputs);
            // Value numbering only removes work.
            assert!(t1.executed_operations <= t0.executed_operations);
        }
    }
}

#[test]
fn sccp_preserves_semantics() {
    for seed in seeds(15) {
        let p = structured(&small_config(seed, true));
        let mut q = p.clone();
        pdce::ssa::sccp(&mut q);
        pdce::ir::simplify_cfg(&mut q);
        pdce::ir::validate::validate(&q).unwrap();
        let inputs: [(&str, i64); 3] = [("v0", 6), ("v1", -1), ("v3", 100)];
        for run_seed in [2u64, 71] {
            let t0 = record_run(&p, &inputs, run_seed);
            let t1 = trace_of(&q, &inputs, t0.decisions.clone());
            assert_eq!(&t0.outputs, &t1.outputs);
        }
    }
}

#[test]
fn sccp_then_pfe_preserves_semantics() {
    for seed in seeds(16) {
        let p = structured(&small_config(seed, false));
        let mut q = p.clone();
        pdce::ssa::sccp(&mut q);
        optimize(&mut q, &PdceConfig::pfe()).unwrap();
        pdce::ir::simplify_cfg(&mut q);
        let inputs: [(&str, i64); 2] = [("v2", 13), ("v4", -2)];
        let t0 = record_run(&p, &inputs, 5);
        let t1 = trace_of(&q, &inputs, t0.decisions.clone());
        assert_eq!(&t0.outputs, &t1.outputs);
    }
}

#[test]
fn pde_plus_simplify_preserves_semantics() {
    for seed in seeds(17) {
        let p = structured(&small_config(seed, true));
        let mut q = p.clone();
        optimize(&mut q, &PdceConfig::pde()).unwrap();
        pdce::ir::simplify_cfg(&mut q);
        pdce::ir::validate::validate(&q).unwrap();
        let inputs: [(&str, i64); 2] = [("v0", 1), ("v4", -9)];
        let t0 = record_run(&p, &inputs, 21);
        // Simplification can remove nondet *forwarding* blocks but keeps
        // every branching node, so decision replay still lines up.
        let t1 = trace_of(&q, &inputs, t0.decisions.clone());
        assert_eq!(&t0.outputs, &t1.outputs);
        assert!(t1.executed_assignments <= t0.executed_assignments);
    }
}

// ---------------------------------------------------------------------------
// Differential solver oracle: FIFO sweep vs. priority worklist
// ---------------------------------------------------------------------------
//
// Both strategies start from the same optimistic initial value of a
// monotone system, so they converge to the *unique* greatest fixpoint —
// any mismatch is a scheduling bug, not a numerical tolerance. The
// oracle therefore demands bit-identical results, not approximate ones.

/// FIFO, priority, and sparse solvers compute the same fixpoint on 200
/// generator-seeded CFGs, for all three analyses the optimizers rely
/// on: dead (backward ∩), faint (boolean network), and delayability
/// (forward ∩). Every fourth case is irreducible (`tangled`). The two
/// dense worklists are the differential oracle for the sparse
/// chain-propagation family.
#[test]
fn fifo_and_priority_solvers_agree_on_200_cfgs() {
    use pdce::core::{DeadSolution, DelayInfo, FaintSolution, LocalInfo, PatternTable};
    use pdce::dfa::{with_strategy, SolverStrategy};
    use pdce::ir::{CfgView, Var};
    const STRATEGIES: [SolverStrategy; 3] = [
        SolverStrategy::Fifo,
        SolverStrategy::Priority,
        SolverStrategy::Sparse,
    ];

    let mut rng = Rng::new(0x9a9e_50de);
    for case in 0..200usize {
        let seed = rng.next_u64();
        let p = if case % 4 == 3 {
            tangled(&small_config(seed, true), 6)
        } else {
            structured(&small_config(seed, case % 2 == 0))
        };
        let view = CfgView::new(&p);

        let dead = STRATEGIES.map(|s| with_strategy(s, || DeadSolution::compute(&p, &view)));
        for d in &dead[1..] {
            for n in p.node_ids() {
                assert_eq!(
                    dead[0].after_each_stmt(&p, n),
                    d.after_each_stmt(&p, n),
                    "dead diverged in {} (case {case})",
                    p.block(n).name
                );
            }
        }

        let faint = STRATEGIES.map(|s| with_strategy(s, || FaintSolution::compute(&p, &view)));
        for f in &faint[1..] {
            for n in p.node_ids() {
                for v in (0..p.num_vars()).map(Var::from_index) {
                    assert_eq!(
                        faint[0].faint_at_entry(n, v),
                        f.faint_at_entry(n, v),
                        "faint entry diverged in {} (case {case})",
                        p.block(n).name
                    );
                    for k in 0..p.block(n).stmts.len() {
                        assert_eq!(
                            faint[0].faint_after(n, k, v),
                            f.faint_after(n, k, v),
                            "faint diverged in {}[{k}] (case {case})",
                            p.block(n).name
                        );
                    }
                }
            }
        }

        let table = PatternTable::build(&p);
        let local = LocalInfo::compute(&p, &table);
        let delay =
            STRATEGIES.map(|s| with_strategy(s, || DelayInfo::compute(&p, &view, &table, &local)));
        for d in &delay[1..] {
            assert_eq!(delay[0].n_delayed, d.n_delayed, "case {case}");
            assert_eq!(delay[0].x_delayed, d.x_delayed, "case {case}");
            assert_eq!(delay[0].n_insert, d.n_insert, "case {case}");
            assert_eq!(delay[0].x_insert, d.x_insert, "case {case}");
        }
    }
}

/// End-to-end: the full pde/pfe drivers emit byte-identical programs
/// under either solver strategy — the fixpoints feed every placement
/// and elimination decision, so this catches divergence the analysis
/// oracle above might miss (e.g. iteration-order-dependent tie-breaks).
#[test]
fn solver_strategy_never_changes_optimizer_output() {
    use pdce::dfa::{with_strategy, SolverStrategy};
    for seed in seeds(19) {
        let p = structured(&small_config(seed, true));
        for config in [PdceConfig::pde(), PdceConfig::pfe()] {
            let printed = [
                SolverStrategy::Fifo,
                SolverStrategy::Priority,
                SolverStrategy::Sparse,
            ]
            .map(|s| {
                let mut q = p.clone();
                with_strategy(s, || optimize(&mut q, &config)).unwrap();
                canonical_string(&q)
            });
            assert_eq!(printed[0], printed[1], "strategies disagree (seed {seed})");
            assert_eq!(printed[0], printed[2], "sparse disagrees (seed {seed})");
        }
    }
}

#[test]
fn stats_are_consistent() {
    for seed in seeds(18) {
        let p = structured(&small_config(seed, true));
        let mut q = p.clone();
        let stats = optimize(&mut q, &PdceConfig::pde()).unwrap();
        assert_eq!(stats.final_stmts, q.num_stmts() as u64);
        assert!(stats.max_stmts >= stats.initial_stmts);
        assert!(stats.max_stmts >= stats.final_stmts);
        assert!(stats.growth_factor() >= 1.0);
        assert!(stats.rounds >= 1);
        // The cache sees at least one hit per round: eliminations and
        // sinking share one CfgView instead of rebuilding it.
        assert!(stats.cache.cfg_misses <= stats.rounds);
    }
}
