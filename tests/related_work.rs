//! Reproduction of the paper's Related-Work claims.
//!
//! * **Briggs & Cooper [4]** (Figure 6 discussion): a loop-oblivious
//!   sinker pushes an assignment into a loop, impairing executions, and
//!   a subsequent partial redundancy elimination cannot repair the
//!   damage — while pde never impairs anything.
//! * **Dhamdhere [9]**: hoisting-based assignment motion (here: LCM,
//!   which hoists computations) "does not allow any elimination of
//!   partially dead code".
//! * **Dhamdhere/Rosen/Zadeck [10]** (footnote 1): interleaving code
//!   motion with copy propagation removes the right-hand-side
//!   computations from the Figure 3 loop, but the assignment itself
//!   stays — only pde removes it.
//! * **Feigen et al. [13]** (Figure 7): one-occurrence-at-a-time sinking
//!   misses m-to-n opportunities (shown via the universe explorer's move
//!   repertoire in `tests/optimality.rs` and `fig_7` in
//!   `tests/figures.rs`).

use pdce::baselines::{copy_propagate, hoist_assignments, naive_sink};
use pdce::core::driver::pde;
use pdce::ir::edgesplit::split_critical_edges;
use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle};
use pdce::ir::parser::parse;
use pdce::ir::Program;
use pdce::lcm::lazy_code_motion;

/// Loop-heavy program in the shape of Figure 6's second half: the
/// assignment is needed only on one arm *inside* the loop.
const FIG6_LOOP: &str = "prog {
    block pre { x := a + b; goto h }
    block h { nondet uses skp }
    block uses { y := y + x; goto latch }
    block skp { goto latch }
    block latch { nondet back post }
    block back { goto h }
    block post { out(y); goto e }
    block e { halt }
}";

/// Decisions driving `k` loop iterations (alternating arms), then exit.
fn loop_decisions(k: usize) -> Vec<usize> {
    let mut d = Vec::new();
    for i in 0..k {
        d.push(i % 2); // uses / skip
        d.push(0); // back
    }
    d.push(0); // uses one last time
    d.push(1); // post
    d
}

fn assignments_executed(prog: &Program, decisions: Vec<usize>) -> u64 {
    let mut env = Env::with_values(prog, &[("a", 3), ("b", 4)]);
    let mut oracle = ReplayOracle::new(decisions);
    let t = run(prog, &mut env, &mut oracle, ExecLimits::default());
    assert!(t.completed);
    t.executed_assignments
}

#[test]
fn briggs_cooper_sinking_impairs_and_pre_cannot_repair() {
    let mut original = parse(FIG6_LOOP).unwrap();
    split_critical_edges(&mut original);

    // pde leaves the loop-external assignment alone (sinking it into the
    // loop would impair executions).
    let mut after_pde = original.clone();
    pde(&mut after_pde).unwrap();

    // The naive sinker pushes it into the loop header.
    let mut after_naive = original.clone();
    let outcome = naive_sink(&mut after_naive);
    assert!(outcome.loop_moves >= 1, "strawman must take the bait");

    // A subsequent PRE hoists the *computation* but cannot remove the
    // per-iteration assignment.
    let mut repaired = after_naive.clone();
    lazy_code_motion(&mut repaired).unwrap();

    for k in [1usize, 4, 16] {
        let d = loop_decisions(k);
        let orig = assignments_executed(&original, d.clone());
        let pde_cost = assignments_executed(&after_pde, d.clone());
        let naive_cost = assignments_executed(&after_naive, d.clone());
        let repaired_cost = assignments_executed(&repaired, d);
        assert!(pde_cost <= orig, "pde must never impair (k={k})");
        assert!(
            naive_cost > orig,
            "naive sinking must impair loop executions (k={k}): {naive_cost} vs {orig}"
        );
        assert!(
            repaired_cost > orig,
            "PRE must fail to repair the impairment (k={k}): {repaired_cost} vs {orig}"
        );
        assert!(pde_cost < naive_cost);
    }
}

/// Hoisting computations (LCM) cannot remove partially dead assignments:
/// on Figure 1 it changes nothing that matters, while pde removes the
/// dead copy.
#[test]
fn hoisting_cannot_eliminate_partial_deadness() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";
    let mut hoisted = parse(src).unwrap();
    split_critical_edges(&mut hoisted);
    lazy_code_motion(&mut hoisted).unwrap();
    // The partially dead computation on the n2 path is still executed:
    // LCM has no notion of dead assignments.
    let d = vec![0usize]; // branch to n2 (y := 4): y := a+b was useless
    let cost_hoisted = assignments_executed(&hoisted, d.clone());
    let mut optimized = parse(src).unwrap();
    pde(&mut optimized).unwrap();
    let cost_pde = assignments_executed(&optimized, d);
    assert!(
        cost_pde < cost_hoisted,
        "pde must beat pure hoisting on the dead path: {cost_pde} vs {cost_hoisted}"
    );
}

/// Dhamdhere [9]: assignment motion by *hoisting* "does not allow any
/// elimination of partially dead code". On Figure 1 the iterated
/// hoisting fixpoint keeps both assignments and both per-path
/// occurrences; pde removes the dead one.
#[test]
fn dhamdhere_hoisting_cannot_eliminate_partially_dead_code() {
    let src = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";
    let mut hoisted = parse(src).unwrap();
    split_critical_edges(&mut hoisted);
    for _ in 0..10 {
        let before = pdce::ir::printer::canonical_string(&hoisted);
        hoist_assignments(&mut hoisted).unwrap();
        if pdce::ir::printer::canonical_string(&hoisted) == before {
            break;
        }
    }
    assert_eq!(hoisted.num_assignments(), 2, "hoisting removes nothing");
    // Dead path (branch to n2): hoisting still pays for y := a + b.
    let d = vec![0usize];
    let cost_hoisted = assignments_executed(&hoisted, d.clone());
    let mut optimized = parse(src).unwrap();
    pde(&mut optimized).unwrap();
    let cost_pde = assignments_executed(&optimized, d);
    assert!(cost_pde < cost_hoisted, "{cost_pde} vs {cost_hoisted}");
}

/// Footnote 1: code motion + copy propagation removes the loop's
/// right-hand-side computations "but the assignment to x would remain in
/// it". pde empties the loop entirely.
#[test]
fn copy_propagation_interleaving_is_weaker_than_pde() {
    // Figure 3-style loop: the fragment is invariant but chained.
    let src = "prog {
        block s { goto h }
        block h { y := a + b; c := y - d; nondet hb after }
        block hb { x := x + 1; goto h }
        block after { nondet n7 n8 }
        block n7 { out(c); goto e }
        block n8 { out(x); goto e }
        block e { halt }
    }";
    // The interleaving pipeline: LCM + copy propagation, iterated.
    let mut interleaved = parse(src).unwrap();
    split_critical_edges(&mut interleaved);
    for _ in 0..3 {
        lazy_code_motion(&mut interleaved).unwrap();
        copy_propagate(&mut interleaved);
    }
    let h = interleaved.block_by_name("h").unwrap();
    assert!(
        !interleaved.block(h).stmts.is_empty(),
        "assignments must remain in the loop under CM+CP"
    );

    // pde empties the loop header.
    let mut optimized = parse(src).unwrap();
    pde(&mut optimized).unwrap();
    let h = optimized.block_by_name("h").unwrap();
    assert!(optimized.block(h).stmts.is_empty());
}
