//! Front-end robustness: the parser, printer, and interpreter must be
//! total functions over their input space.
//!
//! Two layers:
//!
//! * **Property tests** over 200 generated programs: printing and
//!   reparsing is the identity (modulo canonicalization), and the
//!   reparsed program is observationally equivalent to the original
//!   under the interpreter.
//! * **Hostile-input corpus**: truncated sources, duplicate labels,
//!   overflowing literals, pathological nesting, and binary garbage
//!   must all come back as structured [`ParseError`]s — the front end
//!   never panics, whatever the bytes.

use pdce::ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce::ir::parser::parse;
use pdce::ir::printer::{canonical_string, print_program};
use pdce::ir::Program;
use pdce::progen::{structured, GenConfig};
use pdce_rng::Rng;

const CASES: usize = 200;

fn gen_config(seed: u64, nondet: bool) -> GenConfig {
    GenConfig {
        seed,
        target_blocks: 16,
        num_vars: 5,
        stmts_per_block: (1, 3),
        out_prob: 0.25,
        loop_prob: 0.3,
        max_depth: 3,
        expr_depth: 3,
        nondet,
    }
}

fn observe(prog: &Program, seed: u64) -> (Vec<i64>, Vec<usize>, bool) {
    let mut env = Env::with_values(prog, &[("v0", 3), ("v1", -7), ("v2", 11)]);
    let mut oracle = SeededOracle::new(seed);
    let trace = run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 4_096,
        },
    );
    (trace.outputs, trace.decisions, trace.completed)
}

#[test]
fn roundtrip_is_identity_on_200_generated_programs() {
    let mut rng = Rng::new(0x0b5e_55ed);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let prog = structured(&gen_config(seed, case % 4 == 3));
        let printed = print_program(&prog);
        let reparsed =
            parse(&printed).unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): {e}"));
        // Print → parse → print is a fixpoint...
        assert_eq!(
            canonical_string(&prog),
            canonical_string(&reparsed),
            "case {case} (seed {seed:#x}) does not round-trip"
        );
        assert_eq!(printed, print_program(&reparsed), "case {case}");
        // ...and the reparsed program behaves identically: same
        // outputs on the same nondet decision stream.
        let (outputs, decisions, completed) = observe(&prog, seed);
        let mut env = Env::with_values(&reparsed, &[("v0", 3), ("v1", -7), ("v2", 11)]);
        let mut oracle = ReplayOracle::new(decisions);
        let replay = run(
            &reparsed,
            &mut env,
            &mut oracle,
            ExecLimits {
                max_block_visits: 4_096,
            },
        );
        assert_eq!(outputs, replay.outputs, "case {case} diverges");
        assert_eq!(completed, replay.completed, "case {case} termination");
    }
}

/// A valid base program whose every byte-prefix feeds the truncation
/// corpus.
const BASE: &str = "prog {
    block s  { x := (a + b) * 2; if x <= 10 && !(a == b) then t else f }
    block t  { out(x % 3); goto e }
    block f  { skip; nondet t e }
    block e  { halt }
}";

fn hostile_corpus() -> Vec<String> {
    let mut corpus = Vec::new();
    // Every prefix of a valid program (on char boundaries).
    for (i, _) in BASE.char_indices() {
        corpus.push(BASE[..i].to_owned());
    }
    corpus.extend(
        [
            // Duplicate and unknown labels, bad graph shapes.
            "prog { block s { goto e } block s { goto e } block e { halt } }",
            "prog { block s { goto nowhere } block e { halt } }",
            "prog { block s { goto s } }",
            "prog { block s { nondet a b } block a { halt } block b { halt } }",
            "prog { block s { goto e } block dead { goto e } block e { halt } }",
            "prog { block s { goto l } block l { goto l } block e { halt } }",
            // Numeric edge cases.
            "prog { block s { x := 99999999999999999999999999; goto e } block e { halt } }",
            "prog { block s { x := 9223372036854775807; out(-x); goto e } block e { halt } }",
            "prog { block s { x := 1 / 0; out(x % 0); goto e } block e { halt } }",
            // Token garbage.
            "",
            ";;;;;;;;",
            "prog prog prog {{{{",
            "prog { block s { x : = 1; goto e } block e { halt } }",
            "prog { block s { x := 1 ++ 2; goto e } block e { halt } }",
            "prog { block \u{1F980} { halt } }",
            "блок { halt }",
            "prog { block s { out(; goto e } block e { halt } }",
            "prog { block s { halt } } trailing garbage",
        ]
        .into_iter()
        .map(str::to_owned),
    );
    // Pathological nesting: parens, unary chains, and a flat but very
    // long operator chain (which must NOT be rejected for depth).
    for depth in [300usize, 5_000, 60_000] {
        corpus.push(format!(
            "prog {{ block s {{ x := {}1{}; goto e }} block e {{ halt }} }}",
            "(".repeat(depth),
            ")".repeat(depth)
        ));
        corpus.push(format!(
            "prog {{ block s {{ x := {}1; goto e }} block e {{ halt }} }}",
            "!-".repeat(depth)
        ));
    }
    corpus
}

#[test]
fn hostile_inputs_never_panic_the_front_end() {
    for (i, src) in hostile_corpus().iter().enumerate() {
        let outcome = std::panic::catch_unwind(|| parse(src).map(|p| p.num_blocks()));
        assert!(
            outcome.is_ok(),
            "corpus entry {i} panicked the front end: {:?}…",
            &src[..src.len().min(80)]
        );
    }
}

#[test]
fn flat_operator_chains_are_not_depth_limited() {
    // 10k additions recurse only once per precedence level, so the
    // depth guard must not reject them.
    let chain = vec!["1"; 10_000].join(" + ");
    let src = format!("prog {{ block s {{ x := {chain}; out(x); goto e }} block e {{ halt }} }}");
    assert!(parse(&src).is_ok());
}

#[test]
fn hostile_corpus_errors_carry_positions() {
    // Spot-check that rejections are structured, not ad hoc.
    let err = parse("prog { block s { x : = 1; goto e } block e { halt } }").unwrap_err();
    assert!(err.line >= 1);
    let err = parse(&format!(
        "prog {{ block s {{ x := {}1{}; goto e }} block e {{ halt }} }}",
        "(".repeat(60_000),
        ")".repeat(60_000)
    ))
    .unwrap_err();
    assert!(err.message.contains("too deeply nested"));
}
