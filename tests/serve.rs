//! The serving test harness for `pdce serve`: protocol robustness
//! (hostile bytes never panic or wedge the daemon and always get a
//! structured error matching the CLI exit-code taxonomy), the
//! concurrency oracle (concurrent clients, worker counts, and cache
//! temperature never change a single response byte), cache correctness
//! (collision-free keying, bounded eviction, corrupted files degrade to
//! misses), and a fault-injected soak of the real binary.

use std::io::Write;
use std::process::{Command, Stdio};
use std::sync::Arc;

use pdce::ir::printer::print_program;
use pdce::progen::{structured, GenConfig};
use pdce::serve::cache::CacheKey;
use pdce::serve::protocol::encode_request;
use pdce::serve::{Mode, PersistentCache, ResultPayload, ServeOptions, Server};
use pdce::trace::json;
use pdce_rng::Rng;

/// The 200-CFG corpus every oracle replays, pre-encoded so each replay
/// sends byte-identical request lines.
fn corpus_requests() -> Vec<String> {
    (0..200u64)
        .map(|i| {
            let prog = structured(&GenConfig {
                seed: 9_000 + i,
                target_blocks: 8 + (i as usize % 5) * 4,
                num_vars: 6,
                stmts_per_block: (1, 4),
                out_prob: 0.2,
                loop_prob: 0.3,
                max_depth: 8,
                expr_depth: 2,
                nondet: true,
            });
            encode_request(Some(&format!("r{i}")), &print_program(&prog), Mode::Pde)
        })
        .collect()
}

fn status_of(line: &str) -> f64 {
    json::parse(line)
        .unwrap_or_else(|e| panic!("response is not valid JSON ({e}): {line}"))
        .get("status")
        .and_then(|s| s.as_num())
        .unwrap_or_else(|| panic!("response has no numeric status: {line}"))
}

// ---------------------------------------------------------------------
// Protocol robustness: hostile requests
// ---------------------------------------------------------------------

#[test]
fn hostile_lines_always_get_structured_errors() {
    let server = Arc::new(Server::new(ServeOptions::default()));
    let hostile = [
        "not json at all",
        "{",
        "{}",
        "[]",
        "[1,2,3]",
        "null",
        "42",
        "\"a bare string\"",
        "{\"op\":\"optimize\"}",                          // missing program
        "{\"op\":\"optimize\",\"program\":\"\"}",         // empty program
        "{\"op\":\"optimize\",\"program\":42}",           // wrong type
        "{\"op\":\"launch_missiles\",\"program\":\"x\"}", // unknown op
        "{\"op\":\"optimize\",\"program\":\"prog {\"}",   // truncated program text
        "{\"id\":7,\"op\":\"ping\"}",                     // non-string id
        "{\"op\":\"optimize\",\"program\":\"prog { block e { halt } }\",\"mode\":\"o3\"}",
        "{\"op\":\"optimize\",\"program\":\"prog { block e { halt } }\",\"max_rounds\":-1}",
        "{\"op\":\"optimize\",\"program\":\"prog { block e { halt } }\",\"wall_ms\":\"soon\"}",
        "{\"op\":\"optimize\",\"program\":\"prog { block e { halt } }\",\"solver\":\"quantum\"}",
        "{\"op\":\"optimize\",\"program\":\"prog { block e { halt } }\"", // truncated JSON
    ];
    for line in hostile {
        let response = server
            .respond_line(line)
            .unwrap_or_else(|| panic!("no response for: {line}"));
        assert_eq!(
            status_of(&response),
            1.0,
            "hostile line must be status 1: {line}"
        );
        assert!(
            json::parse(&response).unwrap().get("error").is_some(),
            "status-1 response carries an error message: {response}"
        );
    }
    // The daemon is not wedged: a well-formed request still works.
    let ok = server
        .respond_line(&encode_request(
            Some("after"),
            "prog { block e { halt } }",
            Mode::Pde,
        ))
        .unwrap();
    assert_eq!(status_of(&ok), 0.0);
}

#[test]
fn mutated_requests_never_panic_and_answer_every_line() {
    // Fuzz the wire layer: random byte edits of a valid request. Every
    // mutant gets exactly one response that is valid JSON with status
    // 0 or 1 (never a panic, never silence, never an internal error).
    let server = Arc::new(Server::new(ServeOptions::default()));
    let base = encode_request(
        Some("f"),
        "prog { block s { x := 1; out(x); goto e } block e { halt } }",
        Mode::Pde,
    );
    let mut rng = Rng::new(0xF00D);
    for _ in 0..400 {
        let mut bytes = base.clone().into_bytes();
        for _ in 0..rng.gen_range_inclusive(1, 4) {
            let at = rng.gen_range(0, bytes.len());
            match rng.gen_range(0, 3) {
                0 => bytes[at] = rng.gen_range(0, 127) as u8,
                1 => {
                    bytes.remove(at);
                }
                _ => bytes.insert(at, b'{'),
            }
        }
        // Newlines would split the request; the reader layer handles
        // that, respond_line is strictly one line.
        let line: String = String::from_utf8_lossy(&bytes).replace(['\n', '\r'], " ");
        if line.trim().is_empty() {
            continue;
        }
        let response = server
            .respond_line(&line)
            .unwrap_or_else(|| panic!("no response for mutant: {line}"));
        let status = status_of(&response);
        assert!(
            status == 0.0 || status == 1.0,
            "mutant must be served or rejected as bad input, got {status}: {line}"
        );
    }
}

#[test]
fn oversized_and_non_utf8_requests_are_bounded_errors() {
    let server = Arc::new(Server::new(ServeOptions {
        max_request_bytes: 512,
        ..ServeOptions::default()
    }));
    let mut input: Vec<u8> = Vec::new();
    // A line far over the limit, then invalid UTF-8, then a valid ping:
    // the daemon answers all three and keeps going.
    input.extend_from_slice(format!("{{\"program\":\"{}\"}}\n", "y".repeat(1 << 16)).as_bytes());
    input.extend_from_slice(b"{\"op\":\"ping\",\"id\":\"\xff\xfe\"}\n");
    input.extend_from_slice(b"{\"op\":\"ping\",\"id\":\"ok\"}\n");
    let mut out = Vec::new();
    server
        .serve(std::io::Cursor::new(input), &mut out)
        .expect("serve loop completes");
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "every line answered:\n{text}");
    assert_eq!(status_of(lines[0]), 1.0);
    assert!(lines[0].contains("exceeds"));
    assert_eq!(status_of(lines[1]), 1.0);
    assert!(lines[1].contains("UTF-8"));
    assert!(lines[2].contains("\"pong\":true"));
    // The oversized line was not buffered: summary says three requests,
    // two rejected.
    let summary = server.summary();
    assert_eq!(summary.requests, 3);
    assert_eq!(summary.bad_input, 2);
}

// ---------------------------------------------------------------------
// Concurrency oracle: clients × jobs × cache temperature
// ---------------------------------------------------------------------

#[test]
fn concurrent_clients_match_sequential_replay_bytes() {
    let requests = corpus_requests();
    // Sequential reference on a fresh server.
    let reference = Arc::new(Server::new(ServeOptions::default()));
    let expected: Vec<String> = requests
        .iter()
        .map(|r| reference.respond_line(r).unwrap())
        .collect();
    // Four concurrent clients replay the full corpus against one shared
    // server (cold at the start, warming underneath them as they race).
    let shared = Arc::new(Server::new(ServeOptions::default()));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let server = Arc::clone(&shared);
                let requests = &requests;
                scope.spawn(move || -> Vec<String> {
                    requests
                        .iter()
                        .map(|r| server.respond_line(r).unwrap())
                        .collect()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.join().expect("client thread"),
                expected,
                "a concurrent client saw different bytes than the sequential replay"
            );
        }
    });
}

#[test]
fn jobs_and_cache_temperature_never_change_response_bytes() {
    let requests = corpus_requests();
    let run = |jobs: usize, replays: usize| -> Vec<Vec<String>> {
        let server = Arc::new(Server::new(ServeOptions {
            jobs,
            ..ServeOptions::default()
        }));
        (0..replays)
            .map(|_| server.respond_batch(jobs, &requests))
            .collect()
    };
    let seq = run(1, 2);
    let par = run(4, 2);
    // jobs=1 vs jobs=4, and within each: cold replay vs warm replay.
    assert_eq!(seq[0], par[0], "jobs changed cold response bytes");
    assert_eq!(seq[1], par[1], "jobs changed warm response bytes");
    assert_eq!(seq[0], seq[1], "cache temperature changed response bytes");
}

#[test]
fn solver_option_never_changes_response_bytes_warm_or_cold() {
    // Per-request `"solver"` options select different worklist
    // disciplines, but the differential oracle guarantees identical
    // output — so the three strategies must produce byte-identical
    // responses, and each strategy's warm (cache-hit) replay must be
    // byte-identical to its own cold computation. The solver tag is
    // part of the cache key, so each strategy answers warm from its own
    // entry.
    let server = Server::new(ServeOptions::default());
    let solvers = ["fifo", "priority", "sparse"];
    for i in 0..40u64 {
        let prog = structured(&GenConfig {
            seed: 12_000 + i,
            target_blocks: 8 + (i as usize % 5) * 4,
            num_vars: 6,
            stmts_per_block: (1, 4),
            out_prob: 0.2,
            loop_prob: 0.3,
            max_depth: 8,
            expr_depth: 2,
            nondet: true,
        });
        let mut escaped = String::new();
        json::write_escaped(&mut escaped, &print_program(&prog));
        let lines: Vec<String> = solvers
            .iter()
            .map(|s| {
                format!(
                    "{{\"id\":\"q\",\"program\":{escaped},\"mode\":\"pde\",\"solver\":\"{s}\"}}"
                )
            })
            .collect();
        let cold: Vec<String> = lines
            .iter()
            .map(|l| server.respond_line(l).expect("optimize answers"))
            .collect();
        for (s, response) in solvers.iter().zip(&cold) {
            assert_eq!(status_of(response), 0.0, "solver {s} failed: {response}");
            assert_eq!(
                *response, cold[0],
                "program {i}: solver {s} changed response bytes"
            );
        }
        for (line, expected) in lines.iter().zip(&cold) {
            let warm = server.respond_line(line).expect("optimize answers");
            assert_eq!(warm, *expected, "program {i}: warm bytes diverged");
        }
    }
    let summary = server.summary();
    assert!(
        summary.cache_hits >= 40 * solvers.len() as u64,
        "warm replays must hit the per-solver cache entries"
    );
}

// ---------------------------------------------------------------------
// Cache correctness
// ---------------------------------------------------------------------

#[test]
fn cache_keys_are_collision_free_over_the_corpus() {
    let mut keys = std::collections::HashSet::new();
    for (i, request) in corpus_requests().iter().enumerate() {
        let program = json::parse(request)
            .unwrap()
            .get("program")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        for options in [
            "mode=pde;rounds=-;pops=-;wall=-;validate=-",
            "mode=pfe;rounds=-;pops=-;wall=-;validate=-",
        ] {
            assert!(
                keys.insert(CacheKey::compute(&program, options).0),
                "cache key collision at corpus program {i} ({options})"
            );
        }
    }
    assert_eq!(keys.len(), 400);
}

#[test]
fn eviction_under_a_small_byte_bound_stays_correct() {
    let requests = corpus_requests();
    let reference = Server::new(ServeOptions::default());
    let expected: Vec<String> = requests
        .iter()
        .map(|r| reference.respond_line(r).unwrap())
        .collect();
    // A cache far too small for the corpus: constant eviction, but
    // never a wrong (or missing) answer, warm or cold.
    let tiny = Server::new(ServeOptions {
        cache_bytes: 8 * 1024,
        ..ServeOptions::default()
    });
    for replay in 0..2 {
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(
                tiny.respond_line(r).unwrap(),
                expected[i],
                "request {i} (replay {replay}) diverged under eviction pressure"
            );
        }
    }
    // The bound actually bit: the corpus cannot fit, so misses happen
    // on the warm replay too.
    let summary = tiny.summary();
    assert!(
        summary.cache_misses > requests.len() as u64,
        "expected eviction-driven misses, got {summary:?}"
    );
}

#[test]
fn eviction_keeps_cache_bytes_bounded() {
    let mut cache = PersistentCache::in_memory(4 * 1024);
    for i in 0..500u32 {
        let payload = ResultPayload {
            program: format!("prog {{ block e {{ out(v{i}); halt }} }}\n"),
            rounds: 1,
            eliminated: 0,
            sunk: 0,
            inserted: 0,
            rung: "none".into(),
        };
        cache.insert(CacheKey::compute(&payload.program, "mode=pde"), payload);
        assert!(
            cache.bytes() <= 4 * 1024,
            "cache exceeded its byte bound after insert {i}: {} bytes",
            cache.bytes()
        );
    }
    assert!(cache.evictions > 0, "the bound never triggered eviction");
}

#[test]
fn corrupted_cache_file_degrades_to_misses_not_crashes() {
    let dir = std::env::temp_dir().join(format!("pdce-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.cache");
    let requests: Vec<String> = corpus_requests().into_iter().take(20).collect();

    // Populate and persist through a real serve drain.
    let writer_server = Arc::new(Server::new(ServeOptions {
        cache_path: Some(path.clone()),
        ..ServeOptions::default()
    }));
    let expected: Vec<String> = requests
        .iter()
        .map(|r| writer_server.respond_line(r).unwrap())
        .collect();
    writer_server.save_cache().unwrap();
    let saved = std::fs::read_to_string(&path).unwrap();
    assert!(saved.lines().count() > 20, "cache file has entries");

    // Flip bytes in the middle and truncate the tail.
    let mut bytes = saved.into_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    bytes[mid + 1] ^= 0x5a;
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&path, &bytes).unwrap();

    // Reload: damaged entries are skipped (misses), survivors still
    // serve, and every response is byte-identical to the reference.
    let reader_server = Arc::new(Server::new(ServeOptions {
        cache_path: Some(path.clone()),
        ..ServeOptions::default()
    }));
    let report = reader_server.cache_load_report();
    assert!(report.skipped > 0, "corruption went undetected: {report:?}");
    assert!(report.loaded > 0, "intact entries survive: {report:?}");
    for (i, r) in requests.iter().enumerate() {
        assert_eq!(
            reader_server.respond_line(r).unwrap(),
            expected[i],
            "request {i} diverged after cache corruption"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_alias_entries_self_heal_to_canonical_misses() {
    let mut cache = PersistentCache::in_memory(1 << 20);
    let raw = CacheKey::compute("prog { block e { halt } }", "mode=pde");
    // Poison the memo: an alias whose canonical entry does not exist.
    // An evicted target and a corrupted mapping look identical here —
    // either way the fast path must miss, never answer wrongly.
    cache.record_alias(raw, CacheKey(0xDEAD_BEEF_DEAD_BEEF_DEAD_BEEF));
    assert_eq!(cache.alias_len(), 1);
    assert!(
        cache.get_raw_alias(raw).is_none(),
        "a poisoned alias must degrade to a miss"
    );
    assert_eq!(
        cache.alias_len(),
        0,
        "the poisoned entry is dropped on first touch"
    );
    // Healed: once the canonical entry exists the same raw key hits.
    let canonical = CacheKey::compute("canonical text", "mode=pde");
    let payload = ResultPayload {
        program: "prog { block e { halt } }\n".into(),
        rounds: 1,
        eliminated: 0,
        sunk: 0,
        inserted: 0,
        rung: "none".into(),
    };
    cache.insert(canonical, payload.clone());
    cache.record_alias(raw, canonical);
    assert_eq!(cache.get_raw_alias(raw).unwrap(), payload);
}

#[test]
fn alias_memo_cap_clears_deterministically() {
    use pdce::serve::cache::MAX_ALIASES;
    let mut cache = PersistentCache::in_memory(1 << 20);
    let canonical = CacheKey::compute("prog { block e { halt } }", "mode=pde");
    cache.insert(
        canonical,
        ResultPayload {
            program: "prog { block e { halt } }\n".into(),
            rounds: 1,
            eliminated: 0,
            sunk: 0,
            inserted: 0,
            rung: "none".into(),
        },
    );
    for i in 0..MAX_ALIASES as u128 {
        cache.record_alias(CacheKey(i + 1), canonical);
    }
    assert_eq!(cache.alias_len(), MAX_ALIASES, "the memo fills to its cap");
    // The insert that would overflow clears the whole memo first: the
    // post-insert size is exactly one, regardless of what was inside.
    let overflow = CacheKey(u128::MAX);
    cache.record_alias(overflow, canonical);
    assert_eq!(cache.alias_len(), 1, "cap eviction clears then records");
    assert!(cache.get_raw_alias(overflow).is_some());
}

// ---------------------------------------------------------------------
// Transports and the real binary
// ---------------------------------------------------------------------

#[test]
fn tcp_transport_serves_concurrent_connections() {
    use std::io::{BufRead, BufReader, Write as _};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new(ServeOptions::default()));
    let serving = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve_tcp(listener))
    };
    let request = encode_request(Some("tcp"), "prog { block e { halt } }", Mode::Pde);
    let mut clients: Vec<BufReader<std::net::TcpStream>> = (0..3)
        .map(|_| {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream.write_all(format!("{request}\n").as_bytes()).unwrap();
            BufReader::new(stream)
        })
        .collect();
    let mut responses = Vec::new();
    for client in &mut clients {
        let mut line = String::new();
        client.read_line(&mut line).unwrap();
        responses.push(line.trim_end().to_string());
    }
    assert!(responses.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(status_of(&responses[0]), 0.0);
    // Shutdown over one connection stops the whole accept loop.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    assert!(line.contains("\"shutdown\":true"));
    let summary = serving.join().unwrap().expect("accept loop exits cleanly");
    assert!(summary.shutdown);
}

/// Runs the real `pdce serve` binary over stdio, with an optional
/// `FAULT_INJECT` spec, feeding `input` and collecting both streams.
fn serve_binary(args: &[&str], fault: Option<&str>, input: &str) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pdce"));
    cmd.arg("serve").args(args);
    cmd.env_remove("FAULT_INJECT").env_remove("TV");
    if let Some(spec) = fault {
        cmd.env("FAULT_INJECT", spec);
    }
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn cli_serve_answers_and_exits_zero_on_eof_and_shutdown() {
    let request = encode_request(Some("c1"), "prog { block e { halt } }", Mode::Pde);
    // EOF path.
    let (stdout, stderr, ok) = serve_binary(&[], None, &format!("{request}\n"));
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.lines().count(), 1);
    assert!(stderr.contains("eof"));
    // Shutdown path, draining the request queued before it.
    let (stdout, stderr, ok) =
        serve_binary(&[], None, &format!("{request}\n{{\"op\":\"shutdown\"}}\n"));
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.lines().count(), 2);
    assert!(stderr.contains("shutdown"));
}

#[test]
fn cli_serve_rejects_bad_flags_with_usage_exit() {
    let (_, stderr, ok) = serve_binary(&["--frobnicate"], None, "");
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
    let (_, stderr, ok) = serve_binary(&["--tcp", "x", "--unix", "y"], None, "");
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"));
}

/// The soak: a bounded replay through the real binary under fault
/// injection. The daemon must survive every rung, answer every request
/// (degraded per the resilience ladder, never dropped), drain on
/// shutdown, and exit 0.
fn soak_under(fault: &str, expect_rungs: &[&str]) {
    let requests: Vec<String> = corpus_requests().into_iter().take(40).collect();
    let mut input = requests.join("\n");
    input.push_str("\n{\"op\":\"shutdown\",\"id\":\"drain\"}\n");
    // --no-cache: every request must actually run the (faulted)
    // optimizer rather than replaying a cached clean answer.
    let (stdout, stderr, ok) = serve_binary(&["--jobs", "2", "--no-cache"], Some(fault), &input);
    assert!(ok, "daemon died under {fault}: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines.len(),
        requests.len() + 1,
        "every request answered plus the shutdown ack"
    );
    let mut degraded = 0usize;
    for line in &lines[..requests.len()] {
        assert_eq!(status_of(line), 0.0, "request failed under {fault}: {line}");
        let rung = json::parse(line)
            .unwrap()
            .get("rung")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        if rung != "none" {
            assert!(
                expect_rungs.contains(&rung.as_str()),
                "unexpected rung `{rung}` under {fault}"
            );
            degraded += 1;
        }
    }
    assert!(
        degraded > 0,
        "fault {fault} never fired — the soak tested nothing"
    );
    assert!(lines[requests.len()].contains("\"shutdown\":true"));
}

#[test]
fn soak_survives_persistent_sink_panics() {
    // Under a persistent fault every answer degrades, so the rolling
    // failure window trips the circuit breaker partway through: later
    // requests are served at the `breaker-open` identity rung.
    soak_under(
        "panic:sink:*",
        &[
            "cold-solve",
            "fifo-solver",
            "elimination-only",
            "identity",
            "breaker-open",
        ],
    );
}

#[test]
fn soak_survives_persistent_solver_budget_exhaustion() {
    soak_under(
        "budget:solve:*",
        &[
            "cold-solve",
            "fifo-solver",
            "elimination-only",
            "identity",
            "breaker-open",
        ],
    );
}

// ---------------------------------------------------------------------
// Unix sockets: stale-file hygiene and idle cost
// ---------------------------------------------------------------------

/// Spawns the real binary listening on a Unix socket; streams are
/// discarded (the test talks over the socket, not stdio).
fn spawn_unix_server(sock: &std::path::Path, extra: &[&str]) -> std::process::Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pdce"));
    cmd.arg("serve").arg("--unix").arg(sock).args(extra);
    cmd.env_remove("FAULT_INJECT").env_remove("TV");
    cmd.stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn().expect("binary spawns")
}

/// Polls until the server accepts a connection (or ten seconds pass).
fn wait_for_socket(sock: &std::path::Path) -> std::os::unix::net::UnixStream {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if let Ok(stream) = std::os::unix::net::UnixStream::connect(sock) {
            return stream;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never came up on {}",
            sock.display()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn cli_serve_unix_probes_live_sockets_and_clears_stale_ones() {
    use std::io::{BufRead, BufReader};
    let dir = std::env::temp_dir().join(format!("pdce-serve-unix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("pdce.sock");
    // Leave a stale socket file behind: bind a listener and drop it
    // without unlinking, exactly what a crashed server leaves on disk.
    drop(std::os::unix::net::UnixListener::bind(&sock).unwrap());
    assert!(sock.exists(), "the stale socket file is left on disk");
    // The server probes it, finds nobody listening, unlinks, and binds.
    let mut live = spawn_unix_server(&sock, &[]);
    let mut stream = wait_for_socket(&sock);
    // A second server on the same path must refuse to evict the live
    // one rather than silently stealing its socket.
    let out = Command::new(env!("CARGO_BIN_EXE_pdce"))
        .arg("serve")
        .arg("--unix")
        .arg(&sock)
        .output()
        .unwrap();
    assert!(!out.status.success(), "second bind must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("in use by a live server"),
        "stderr names the live conflict: {stderr}"
    );
    // The live server is unharmed by the probe connection: it still
    // answers, then drains on shutdown.
    stream
        .write_all(b"{\"op\":\"ping\",\"id\":\"alive\"}\n{\"op\":\"shutdown\"}\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\":true"), "live server wedged: {line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"shutdown\":true"), "got: {line}");
    assert!(live.wait().unwrap().success());
    assert!(!sock.exists(), "shutdown removes the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_unix_daemon_burns_near_zero_cpu() {
    let dir = std::env::temp_dir().join(format!("pdce-serve-idle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("idle.sock");
    let mut live = spawn_unix_server(&sock, &[]);
    // Hold an idle connection open so both the accept loop and a
    // per-connection read loop sit in their backoff waits.
    let mut stream = wait_for_socket(&sock);
    let cpu_ticks = |pid: u32| -> u64 {
        let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).unwrap();
        // Fields after the parenthesized comm: state is field 3, so
        // utime (field 14) and stime (15) are at indexes 11 and 12.
        let rest = stat.rsplit(") ").next().unwrap();
        let fields: Vec<&str> = rest.split_whitespace().collect();
        fields[11].parse::<u64>().unwrap() + fields[12].parse::<u64>().unwrap()
    };
    // Let startup settle, then measure two idle seconds.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let before = cpu_ticks(live.id());
    std::thread::sleep(std::time::Duration::from_secs(2));
    let ticks = cpu_ticks(live.id()) - before;
    // With exponential idle backoff the daemon wakes a handful of times
    // per second; a busy-polling regression burns an order of magnitude
    // more. 15 ticks is 0.15s of CPU over 2s idle — far above the
    // healthy cost, far below a spin.
    assert!(
        ticks <= 15,
        "idle daemon burned {ticks} cpu tick(s) over 2s (busy-loop regression?)"
    );
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let _ = live.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
