//! SSA-substrate integration: SCCP and PDE reinforcing each other, and
//! the sparse web on hostile control flow.

use pdce::core::driver::{optimize, PdceConfig};
use pdce::ir::parser::parse;
use pdce::ir::{simplify_cfg, CfgView};
use pdce::progen::{tangled, GenConfig};
use pdce::ssa::{sccp, ssa_dce, SsaWeb};

/// SCCP folds the branch, simplification removes the dead arm, and pde
/// then eliminates an assignment that was only "live" because of the
/// unreachable path — neither pass alone gets there.
#[test]
fn sccp_unlocks_pde_opportunities() {
    // y is assigned before a branch whose condition SCCP can decide, and
    // observed only on the statically-dead arm.
    let src = "prog {
        block s  { k := 1; y := a + b; if k == 1 then t else f }
        block t  { out(a); goto e }
        block f  { out(y); goto e }
        block e  { halt }
    }";
    // pde alone keeps y := a + b: the f path (statically present)
    // observes it.
    let mut pde_only = parse(src).unwrap();
    optimize(&mut pde_only, &PdceConfig::pde()).unwrap();
    assert!(
        pdce::ir::printer::print_program(&pde_only).contains("a + b"),
        "pde alone must keep the assignment"
    );

    // SCCP proves the f arm unreachable; after simplification pde drops
    // the assignment entirely.
    let mut combined = parse(src).unwrap();
    sccp(&mut combined);
    simplify_cfg(&mut combined);
    optimize(&mut combined, &PdceConfig::pde()).unwrap();
    assert!(
        !pdce::ir::printer::print_program(&combined).contains("a + b"),
        "sccp + simplify + pde must remove it:\n{}",
        pdce::ir::printer::print_program(&combined)
    );
}

/// The SSA web stays sparse on tangled, irreducible graphs: edges grow
/// linearly with statements (φs included), never quadratically.
#[test]
fn web_stays_sparse_on_irreducible_graphs() {
    for seed in 0..10u64 {
        let p = tangled(
            &GenConfig {
                seed,
                target_blocks: 40,
                num_vars: 6,
                nondet: true,
                ..GenConfig::default()
            },
            10,
        );
        let view = CfgView::new(&p);
        let web = SsaWeb::build(&p, &view);
        let i = p.num_stmts().max(1) as u64;
        let v = p.num_vars() as u64;
        assert!(
            web.edges <= 20 * i * v,
            "seed {seed}: {} edges for i={i}, v={v}",
            web.edges
        );
    }
}

/// ssa_dce after pde is a no-op: pde's internal dce already removed all
/// dead code, and sinking never introduces faint assignments... except
/// where sinking *creates* new total deadness that dce already caught.
/// (pfe ≥ ssa_dce in power, so running ssa_dce after pfe removes 0.)
#[test]
fn ssa_dce_finds_nothing_after_pfe() {
    for seed in 0..20u64 {
        let mut p = pdce::progen::structured(&GenConfig {
            seed,
            target_blocks: 20,
            nondet: true,
            ..GenConfig::default()
        });
        optimize(&mut p, &PdceConfig::pfe()).unwrap();
        assert_eq!(ssa_dce(&mut p), 0, "seed {seed}");
    }
}

/// Branch folding composes with the paper's Figure 1: a constant branch
/// in front of the figure changes nothing about the pde result shape.
#[test]
fn constant_guard_before_fig1() {
    let src = "prog {
        block g  { mode := 2; if mode == 2 then n1 else dead }
        block dead { out(999); goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { y := 4; goto n4 }
        block n3 { out(y); goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";
    let mut p = parse(src).unwrap();
    sccp(&mut p);
    simplify_cfg(&mut p);
    optimize(&mut p, &PdceConfig::pde()).unwrap();
    assert!(p.block_by_name("dead").is_none());
    let n1 = p.block_by_name("n1").unwrap();
    assert!(p.block(n1).stmts.is_empty(), "figure-1 sinking still fires");
}
