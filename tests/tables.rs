//! Tables 1 and 2 of the paper, checked against hand-computed fixpoints
//! on the Figure 1 program:
//!
//! ```text
//! s  → n1
//! n1: y := a + b        → n2 | n3
//! n2: y := 4            → n4
//! n3: out(y)            → n4
//! n4: out(y)            → e
//! e:  halt
//! ```
//!
//! Hand derivation (variables y, a, b):
//!
//! * Dead (Table 1, backward, all-paths, everything dead at exit):
//!   - exit of n4: all dead. entry of n4: y live (out(y)).
//!   - exit of n2 = exit of n3 = entry of n4: y live, a b dead.
//!   - entry of n2: y dead (redefined); entry of n3: y live.
//!   - exit of n1 = entry(n2) ∧ entry(n3): y live (n3 side), a b dead.
//!   - entry of n1: y dead... no — y's deadness before `y := a+b`:
//!     N-DEAD(y) = ¬USED(y) ∧ (X-DEAD ∨ MOD) = true ∧ (false ∨ true):
//!     y is dead on entry to n1 (it is overwritten before any use).
//!     a, b are used by the assignment: live at entry of n1.
//!
//! * Delayability (Table 2, forward, all-paths, patterns
//!   α₁ = `y := 4`, α₂ = `y := a + b`):
//!   - LOCDELAYED: n1 {α₂}, n2 {α₁}. LOCBLOCKED: n1 {α₁ α₂ — the
//!     occurrence modifies y}, n2 {α₁ α₂}, n3 {α₁ α₂ — out(y) uses y},
//!     n4 {α₁ α₂}.
//!   - N-DELAYED: n2 {α₂}, n3 {α₂} (from n1's exit); n4 ∅ (α₂ blocked
//!     in both preds; α₁ not delayed on the n3 path).
//!   - N-INSERT: n2 {α₂}, n3 {α₂}. X-INSERT: n2 {α₁} (α₁'s candidate
//!     stops at n2's exit because n4's meet fails).

use pdce::core::{DeadSolution, DelayInfo, LocalInfo, PatternTable};
use pdce::ir::parser::parse;
use pdce::ir::CfgView;

const FIG1: &str = "prog {
    block s  { goto n1 }
    block n1 { y := a + b; nondet n2 n3 }
    block n2 { y := 4; goto n4 }
    block n3 { out(y); goto n4 }
    block n4 { out(y); goto e }
    block e  { halt }
}";

#[test]
fn table1_dead_fixpoint_on_fig1() {
    let p = parse(FIG1).unwrap();
    let view = CfgView::new(&p);
    let sol = DeadSolution::compute(&p, &view);
    let var = |name: &str| p.vars().lookup(name).unwrap();
    let node = |name: &str| p.block_by_name(name).unwrap();
    let y = var("y");
    let a = var("a");
    let b = var("b");

    // Exit of the program: everything dead.
    assert!(sol.at_exit(p.exit()).get(y.index()));
    assert!(sol.at_exit(p.exit()).get(a.index()));
    assert!(sol.at_exit(p.exit()).get(b.index()));

    // Entry of n4: y live (out(y)), a b dead.
    let n4 = node("n4");
    assert!(!sol.at_entry(n4).get(y.index()));
    assert!(sol.at_entry(n4).get(a.index()));
    assert!(sol.at_entry(n4).get(b.index()));

    // Entry of n2: y dead (redefined before use).
    assert!(sol.at_entry(node("n2")).get(y.index()));
    // Entry of n3: y live.
    assert!(!sol.at_entry(node("n3")).get(y.index()));

    // Exit of n1 (meet over n2, n3): y live.
    let n1 = node("n1");
    assert!(!sol.at_exit(n1).get(y.index()));
    // Entry of n1: y dead (overwritten), a b live (used by the rhs).
    assert!(sol.at_entry(n1).get(y.index()));
    assert!(!sol.at_entry(n1).get(a.index()));
    assert!(!sol.at_entry(n1).get(b.index()));

    // Immediately after `y := a + b` the variable is NOT dead (it is
    // used on the n3 path before redefinition): partial deadness.
    assert!(!sol.dead_after(&p, n1, 0, y));
}

#[test]
fn table2_delayability_fixpoint_on_fig1() {
    let p = parse(FIG1).unwrap();
    let view = CfgView::new(&p);
    let table = PatternTable::build(&p);
    let local = LocalInfo::compute(&p, &table);
    let delay = DelayInfo::compute(&p, &view, &table, &local);
    let node = |name: &str| p.block_by_name(name).unwrap().index();
    let pat = |key: &str| {
        (0..table.len())
            .find(|&i| table.key(i).as_str() == key)
            .unwrap()
    };
    let a1 = pat("y := 4");
    let a2 = pat("y := a + b");

    // Local predicates (Figure 13's candidate rules).
    assert!(local.locdelayed[node("n1")].get(a2));
    assert!(!local.locdelayed[node("n1")].get(a1));
    assert!(local.locdelayed[node("n2")].get(a1));
    assert!(local.locblocked[node("n1")].get(a1), "y := a+b mods y");
    assert!(
        local.locblocked[node("n1")].get(a2),
        "the occurrence itself"
    );
    assert!(local.locblocked[node("n3")].get(a1), "out(y) uses y");
    assert!(local.locblocked[node("n3")].get(a2));
    assert!(local.locblocked[node("n4")].get(a1));
    assert!(local.locblocked[node("n4")].get(a2));
    assert!(!local.locblocked[node("s")].get(a1));
    assert!(!local.locblocked[node("s")].get(a2));

    // N-DELAYED: α₂ reaches the entries of n2 and n3, nothing else.
    for (blk, bit, expected) in [
        ("s", a2, false),
        ("n1", a2, false),
        ("n2", a2, true),
        ("n3", a2, true),
        ("n4", a2, false),
        ("e", a2, false),
        ("n2", a1, false),
        ("n4", a1, false),
    ] {
        assert_eq!(
            delay.n_delayed[node(blk)].get(bit),
            expected,
            "N-DELAYED mismatch at {blk}"
        );
    }

    // X-DELAYED: α₂ at n1's exit; α₁ at n2's exit.
    assert!(delay.x_delayed[node("n1")].get(a2));
    assert!(delay.x_delayed[node("n2")].get(a1));
    assert!(!delay.x_delayed[node("n2")].get(a2));
    assert!(!delay.x_delayed[node("n3")].get(a2));

    // Insertion points: α₂ at the entries of n2 and n3; α₁ re-inserted
    // at n2's exit (the n3 path never carries it, so the meet at n4
    // fails).
    assert!(delay.n_insert[node("n2")].get(a2));
    assert!(delay.n_insert[node("n3")].get(a2));
    assert!(!delay.n_insert[node("n4")].get(a2));
    assert!(delay.x_insert[node("n2")].get(a1));
    for blk in ["s", "n1", "e"] {
        assert!(delay.n_insert[node(blk)].none(), "{blk}");
        assert!(delay.x_insert[node(blk)].none(), "{blk}");
    }
}

/// The faint analysis agrees with the dead analysis on Figure 1 (no
/// faint-only code there), and extends it on the Figure 9 loop.
#[test]
fn table1_faint_column_on_fig1_and_fig9() {
    use pdce::core::FaintSolution;
    let p = parse(FIG1).unwrap();
    let view = CfgView::new(&p);
    let dead = DeadSolution::compute(&p, &view);
    let faint = FaintSolution::compute(&p, &view);
    for n in p.node_ids() {
        for (k, stmt) in p.block(n).stmts.iter().enumerate() {
            if let Some(lhs) = stmt.modified() {
                assert_eq!(
                    dead.dead_after(&p, n, k, lhs),
                    faint.faint_after(n, k, lhs),
                    "fig1 has no faint-only assignment ({}[{}])",
                    p.block(n).name,
                    k
                );
            }
        }
    }

    let p9 = parse(
        "prog {
           block s { goto l }
           block l { x := x + 1; nondet l d }
           block d { goto e }
           block e { halt }
         }",
    )
    .unwrap();
    let view9 = CfgView::new(&p9);
    let dead9 = DeadSolution::compute(&p9, &view9);
    let faint9 = FaintSolution::compute(&p9, &view9);
    let l = p9.block_by_name("l").unwrap();
    let x = p9.vars().lookup("x").unwrap();
    assert!(!dead9.dead_after(&p9, l, 0, x), "not dead (self-use)");
    assert!(faint9.faint_after(l, 0, x), "but faint (Figure 9)");
}
